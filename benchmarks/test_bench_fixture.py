"""The benchmark fixture writes well-formed, schema-stable JSON."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from benchmarks.bench_pim_ops import SCHEMA, run_benchmarks
from repro.obs.bench import DeterminismError, bench_kernel

REQUIRED_KERNEL_KEYS = {
    "name",
    "trd",
    "repeats",
    "sim_cycles",
    "sim_energy_pj",
    "spans",
    "wall_seconds_min",
    "wall_seconds_mean",
    "wall_seconds_median",
}


def test_run_benchmarks_schema():
    document = run_benchmarks(repeats=1)
    assert document["schema"] == SCHEMA == "coruscant-bench-pim-ops/2"
    assert document["repeats"] == 1
    names = [k["name"] for k in document["kernels"]]
    assert names == ["add2_trd3", "add5_trd7", "mult8_trd7", "max5_trd7"]
    for kernel in document["kernels"]:
        assert REQUIRED_KERNEL_KEYS <= set(kernel)
        assert kernel["sim_cycles"] > 0
        assert kernel["sim_energy_pj"] > 0
        assert kernel["spans"] >= 1
        assert kernel["wall_seconds_min"] > 0
        assert (
            kernel["wall_seconds_min"] <= kernel["wall_seconds_median"]
        )


def test_sim_numbers_deterministic():
    a = run_benchmarks(repeats=1)
    b = run_benchmarks(repeats=2)
    for ka, kb in zip(a["kernels"], b["kernels"]):
        assert ka["sim_cycles"] == kb["sim_cycles"]
        assert ka["sim_energy_pj"] == kb["sim_energy_pj"]
        assert ka["spans"] == kb["spans"]


def test_repeat_drift_fails_loudly():
    # A kernel whose cost grows with every invocation is exactly the
    # non-determinism the fixture must refuse to average away: v1 of the
    # schema silently kept the last repeat's values.
    calls = []

    def drifting(system):
        calls.append(None)
        for _ in range(len(calls)):
            system.add([173, 58], n_bits=8, exact=False)

    with pytest.raises(DeterminismError, match="sim_cycles"):
        bench_kernel("drifting", 7, 2, drifting)


def test_single_repeat_never_raises_determinism_error():
    result = bench_kernel(
        "once", 7, 1, lambda s: s.add([1, 2], n_bits=8, exact=False)
    )
    assert result["repeats"] == 1
    assert result["sim_cycles"] > 0


def test_fixture_script_writes_valid_json(tmp_path):
    out = tmp_path / "BENCH_pim_ops.json"
    script = Path(__file__).with_name("bench_pim_ops.py")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(script.parent.parent / "src")
    proc = subprocess.run(
        [sys.executable, str(script), "--out", str(out), "--repeats", "1"],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    document = json.loads(out.read_text())
    assert document["schema"] == SCHEMA
    assert len(document["kernels"]) == 4
