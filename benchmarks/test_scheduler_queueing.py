"""Fig. 10 companion: the queueing-delay breakdown of the runtime.

The paper attributes ~80% of the PIM runtime to queueing delay with the
remaining ~20% being array operation time. The bank-state command
scheduler reproduces this breakdown under saturating load, and shows how
it collapses when the offered load drops.
"""

from benchmarks.conftest import fmt, print_table
from repro.arch.scheduler import CommandScheduler, stream_from_counts
from repro.arch.timing import DRAM_DDR3_1600, DWM_DDR3_1600


def run_breakdown():
    out = {}
    for label, rate in (("saturated", 8.0), ("moderate", 0.8), ("light", 0.05)):
        stream = stream_from_counts(3000, arrival_rate=rate, seed=5)
        stats = CommandScheduler(DWM_DDR3_1600).run(stream)
        out[label] = stats
    return out


def test_queueing_breakdown(benchmark):
    results = benchmark(run_breakdown)
    rows = [
        (
            label,
            fmt(stats.queue_fraction * 100, 1) + "%",
            fmt(stats.hit_rate * 100, 1) + "%",
            stats.total_cycles,
        )
        for label, stats in results.items()
    ]
    print_table(
        "Queueing share of runtime (paper: ~80% under load)",
        ["load", "queue share", "row-hit rate", "makespan"],
        rows,
    )
    assert results["saturated"].queue_fraction > 0.6
    assert results["light"].queue_fraction < 0.3
    assert (
        results["saturated"].queue_fraction
        > results["moderate"].queue_fraction
        > results["light"].queue_fraction
    )


def test_dwm_vs_dram_occupancy(benchmark):
    def run():
        stream = stream_from_counts(3000, arrival_rate=8.0, seed=6)
        dwm = CommandScheduler(DWM_DDR3_1600).run(stream)
        dram = CommandScheduler(DRAM_DDR3_1600).run(stream)
        return dwm, dram

    dwm, dram = benchmark(run)
    print_table(
        "Saturated makespan: DWM vs DRAM (Section V-C ordering)",
        ["memory", "makespan (cycles)"],
        [("DWM", dwm.total_cycles), ("DRAM", dram.total_cycles)],
    )
    # With good locality, DWM's shift cost undercuts DRAM's precharge.
    assert dwm.total_cycles < dram.total_cycles * 1.15
