"""Admission control: bounded queues, priority classes, backpressure."""

import asyncio

import pytest

from repro.service.admission import (
    AdmissionPolicy,
    KernelQueue,
    ProfileQueues,
)
from repro.service.protocol import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    KernelRequest,
    ServiceReject,
    reject_response,
)
from repro.utils.deadline import Deadline


def request(kernel="add", priority=PRIORITY_INTERACTIVE):
    return KernelRequest(
        kernel=kernel,
        payload={},
        deadline=Deadline.never(),
        priority=priority,
    )


class TestAdmissionPolicy:
    def test_defaults_valid(self):
        policy = AdmissionPolicy()
        assert policy.total_capacity == policy.capacity + policy.high_reserve

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0},
            {"high_reserve": -1},
            {"retry_after": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)


class TestKernelQueue:
    def policy(self):
        return AdmissionPolicy(capacity=2, high_reserve=1)

    def test_batch_capped_below_reserve(self):
        queue = KernelQueue(self.policy())
        queue.offer(request(priority=PRIORITY_BATCH))
        queue.offer(request(priority=PRIORITY_BATCH))
        with pytest.raises(ServiceReject) as exc:
            queue.offer(request(priority=PRIORITY_BATCH))
        assert exc.value.http_status == 429
        assert exc.value.error == "queue_full"
        # The reserve slot is still open for interactive traffic.
        queue.offer(request(priority=PRIORITY_INTERACTIVE))
        assert len(queue) == 3

    def test_interactive_bounded_by_total(self):
        queue = KernelQueue(self.policy())
        for _ in range(3):
            queue.offer(request())
        with pytest.raises(ServiceReject):
            queue.offer(request())

    def test_interactive_dequeued_first(self):
        queue = KernelQueue(self.policy())
        batch = request(priority=PRIORITY_BATCH)
        inter = request(priority=PRIORITY_INTERACTIVE)
        queue.offer(batch)
        queue.offer(inter)
        assert queue.take() is inter
        assert queue.take() is batch
        assert queue.take() is None

    def test_queue_full_carries_retry_after(self):
        queue = KernelQueue(self.policy())
        queue.offer(request(priority=PRIORITY_BATCH))
        queue.offer(request(priority=PRIORITY_BATCH))
        with pytest.raises(ServiceReject) as exc:
            queue.offer(request(priority=PRIORITY_BATCH))
        response = reject_response(request(), exc.value)
        assert response.http_status == 429
        assert "Retry-After" in response.headers
        assert int(response.headers["Retry-After"]) >= 1
        assert response.body["retry_after_s"] > 0

    def test_drain_empties_in_priority_order(self):
        queue = KernelQueue(self.policy())
        batch = request(priority=PRIORITY_BATCH)
        inter = request()
        queue.offer(batch)
        queue.offer(inter)
        assert list(queue.drain()) == [inter, batch]
        assert len(queue) == 0


class TestProfileQueues:
    def run(self, coro):
        return asyncio.run(coro)

    def test_next_returns_queued_request(self):
        async def scenario():
            queues = ProfileQueues(AdmissionPolicy(capacity=2))
            req = request()
            queues.offer(req)
            assert await queues.next() is req

        self.run(scenario())

    def test_round_robin_across_kernels(self):
        async def scenario():
            queues = ProfileQueues(AdmissionPolicy(capacity=4))
            adds = [request("add") for _ in range(2)]
            mults = [request("multiply") for _ in range(2)]
            for req in adds + mults:
                queues.offer(req)
            taken = [await queues.next() for _ in range(4)]
            kernels = [req.kernel for req in taken]
            # One hot kernel must not be served twice in a row while
            # another kernel waits.
            assert kernels.count("add") == 2
            assert kernels.count("multiply") == 2
            assert kernels[0] != kernels[1]

        self.run(scenario())

    def test_closed_queue_refuses_with_503(self):
        async def scenario():
            queues = ProfileQueues()
            queues.close()
            with pytest.raises(ServiceReject) as exc:
                queues.offer(request())
            assert exc.value.http_status == 503
            assert exc.value.error == "draining"

        self.run(scenario())

    def test_close_drains_before_none(self):
        async def scenario():
            queues = ProfileQueues()
            first = request()
            second = request("multiply")
            queues.offer(first)
            queues.offer(second)
            queues.close()
            drained = [await queues.next(), await queues.next()]
            assert first in drained and second in drained
            assert await queues.next() is None

        self.run(scenario())

    def test_next_wakes_on_offer(self):
        async def scenario():
            queues = ProfileQueues()
            waiter = asyncio.ensure_future(queues.next())
            await asyncio.sleep(0)
            assert not waiter.done()
            req = request()
            queues.offer(req)
            assert await asyncio.wait_for(waiter, timeout=1) is req

        self.run(scenario())

    def test_depths_per_kernel(self):
        queues = ProfileQueues()
        queues.offer(request("add"))
        queues.offer(request("add"))
        queues.offer(request("popcount"))
        depths = queues.depths()
        assert depths["add"] == 2
        assert depths["popcount"] == 1
        assert len(queues) == 3
