"""Unit tests for N-modular redundancy voting."""

import pytest

from repro.arch.dbc import DomainBlockCluster
from repro.core.nmr import ModularRedundancy
from repro.device.parameters import DeviceParameters


def make_nmr(tracks=8, trd=7):
    dbc = DomainBlockCluster(
        tracks=tracks, domains=32, params=DeviceParameters(trd=trd)
    )
    return ModularRedundancy(dbc), dbc


def replicas_with_faults(good, n, fault_positions):
    """n copies of `good`, flipping one distinct replica per fault pos."""
    reps = [list(good) for _ in range(n)]
    for replica, pos in fault_positions:
        reps[replica][pos] ^= 1
    return reps


class TestVote:
    def test_tmr_corrects_single_fault(self):
        nmr, _ = make_nmr()
        good = [1, 0, 1, 1, 0, 0, 1, 0]
        reps = replicas_with_faults(good, 3, [(1, 2)])
        assert nmr.vote(reps).bits == good

    def test_tmr_fails_on_two_colocated_faults(self):
        nmr, _ = make_nmr()
        good = [1, 0, 0, 0, 0, 0, 0, 0]
        reps = replicas_with_faults(good, 3, [(0, 0), (1, 0)])
        assert nmr.vote(reps).bits[0] == 0  # uncorrectable, as Section III-F says

    def test_5mr_corrects_two_faults(self):
        nmr, _ = make_nmr()
        good = [0, 1, 0, 1, 0, 1, 0, 1]
        reps = replicas_with_faults(good, 5, [(0, 1), (3, 1)])
        assert nmr.vote(reps).bits == good

    def test_7mr_corrects_three_faults(self):
        nmr, _ = make_nmr()
        good = [1] * 8
        reps = replicas_with_faults(good, 7, [(0, 4), (2, 4), (5, 4)])
        assert nmr.vote(reps).bits == good

    def test_trd3_supports_tmr_only(self):
        nmr, _ = make_nmr(trd=3)
        assert nmr.max_redundancy() == 3
        good = [1, 0, 1, 0, 1, 0, 1, 0]
        reps = replicas_with_faults(good, 3, [(2, 6)])
        assert nmr.vote(reps).bits == good

    def test_trd5_supports_up_to_n3(self):
        # N = 5 needs one '1' pad + replicas = 6 slots > 5.
        nmr, _ = make_nmr(trd=5)
        assert nmr.max_redundancy() == 3

    def test_trd7_supports_n7(self):
        nmr, _ = make_nmr(trd=7)
        assert nmr.max_redundancy() == 7

    def test_invalid_n(self):
        nmr, _ = make_nmr()
        with pytest.raises(ValueError):
            nmr.vote([[0] * 8] * 4)

    def test_replica_width_checked(self):
        nmr, _ = make_nmr()
        with pytest.raises(ValueError):
            nmr.vote([[0, 1]] * 3)

    def test_vote_costs_one_tr(self):
        nmr, dbc = make_nmr()
        before = dbc.stats.cycles
        nmr.vote([[1] * 8] * 3)
        assert dbc.stats.cycles - before == 1


class TestRunRedundant:
    def test_executes_n_times(self):
        nmr, _ = make_nmr()
        calls = []

        def compute(i):
            calls.append(i)
            return [1, 0] * 4

        result = nmr.run_redundant(3, compute)
        assert calls == [0, 1, 2]
        assert result.bits == [1, 0] * 4

    def test_faulty_minority_corrected(self):
        nmr, _ = make_nmr()

        def compute(i):
            row = [0] * 8
            if i == 1:  # one faulty replica
                row[3] = 1
            return row

        assert nmr.run_redundant(3, compute).bits == [0] * 8

    def test_requires_pim_dbc(self):
        plain = DomainBlockCluster(tracks=4, domains=32, pim_enabled=False)
        with pytest.raises(ValueError):
            ModularRedundancy(plain)
