"""OpenMetrics text exposition: rendering, name mapping, negotiation."""

import pytest

from repro.telemetry import (
    MetricsRegistry,
    OPENMETRICS_CONTENT_TYPE,
    TelemetryHub,
    negotiates_openmetrics,
    render_openmetrics,
)
from repro.telemetry.hub import REQUEST_SECONDS_BUCKETS


def lines_of(registry):
    return render_openmetrics(registry).splitlines()


class TestRendering:
    def test_document_shape(self):
        registry = MetricsRegistry()
        registry.counter("device.ops").inc(3)
        registry.gauge("mem.row_buffer_hit_rate").set(0.5)
        text = render_openmetrics(registry)
        assert text.endswith("# EOF\n")
        lines = text.splitlines()
        assert "# TYPE coruscant_device_ops counter" in lines
        assert "coruscant_device_ops_total 3" in lines
        assert "# TYPE coruscant_mem_row_buffer_hit_rate gauge" in lines
        assert "coruscant_mem_row_buffer_hit_rate 0.5" in lines

    def test_empty_registry_is_just_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("resilience.retry_depth", (1, 2, 3))
        for value in (1, 1, 2, 9):
            hist.observe(value)
        lines = lines_of(registry)
        fam = "coruscant_resilience_retry_depth"
        assert f"# TYPE {fam} histogram" in lines
        assert f'{fam}_bucket{{le="1.0"}} 2' in lines
        assert f'{fam}_bucket{{le="2.0"}} 3' in lines
        assert f'{fam}_bucket{{le="3.0"}} 3' in lines
        assert f'{fam}_bucket{{le="+Inf"}} 4' in lines
        assert f"{fam}_sum 13" in lines
        assert f"{fam}_count 4" in lines

    def test_dynamic_segments_become_labels(self):
        hub = TelemetryHub()
        hub.service_admitted("multiply", "batch")
        hub.service_rejected("add", "queue_full")
        hub.service_shed("add", "queue")
        hub.service_request("multiply", "ok", 0.002)
        hub.service_queue_depth("storm", "add", 5)
        hub.resilient_op(2, "recovered")
        lines = lines_of(hub.metrics)
        assert 'coruscant_service_admitted_total{priority="batch"} 1' in lines
        assert 'coruscant_service_kernel_admitted_total{kernel="multiply"} 1' in lines
        assert 'coruscant_service_rejected_total{reason="queue_full"} 1' in lines
        assert 'coruscant_service_shed_total{stage="queue"} 1' in lines
        assert 'coruscant_service_requests_total{status="ok"} 1' in lines
        assert (
            'coruscant_service_queue_depth{kernel="add",profile="storm"} 5'
            in lines
        )
        assert 'coruscant_resilience_verdict_total{verdict="recovered"} 1' in lines

    def test_per_kernel_latency_merges_into_one_family(self):
        hub = TelemetryHub()
        hub.service_request("add", "ok", 0.002)
        hub.service_request("multiply", "ok", 0.004)
        lines = lines_of(hub.metrics)
        fam = "coruscant_service_request_seconds"
        # One TYPE header covers the bare aggregate and both kernels.
        assert lines.count(f"# TYPE {fam} histogram") == 1
        assert f'{fam}_bucket{{kernel="add",le="+Inf"}} 1' in lines
        assert f'{fam}_bucket{{kernel="multiply",le="+Inf"}} 1' in lines
        assert f'{fam}_bucket{{le="+Inf"}} 2' in lines
        assert f"{fam}_count 2" in lines
        # Bucket edges render as floats per the exposition grammar.
        edge = REQUEST_SECONDS_BUCKETS[0]
        assert f'{fam}_bucket{{le="{edge}"}} 0' in lines

    def test_families_are_sorted_and_unique(self):
        hub = TelemetryHub()
        hub.service_admitted("add", "interactive")
        hub.device_op("shift", 4, 0.6)
        text = render_openmetrics(hub.metrics)
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE")
        ]
        assert type_lines == sorted(type_lines)
        families = [line.split()[2] for line in type_lines]
        assert len(families) == len(set(families))


class TestNegotiation:
    @pytest.mark.parametrize(
        "accept",
        [
            "application/openmetrics-text",
            "application/openmetrics-text; version=1.0.0",
            "text/plain",
            "application/json, text/plain;q=0.5",
            "TEXT/PLAIN",
        ],
    )
    def test_text_forms_negotiate(self, accept):
        assert negotiates_openmetrics(accept) is True

    @pytest.mark.parametrize(
        "accept", [None, "", "application/json", "*/*", "text/html"]
    )
    def test_json_stays_default(self, accept):
        assert negotiates_openmetrics(accept) is False

    def test_content_type_names_the_version(self):
        assert "openmetrics-text" in OPENMETRICS_CONTENT_TYPE
        assert "version=1.0.0" in OPENMETRICS_CONTENT_TYPE
