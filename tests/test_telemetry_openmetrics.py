"""OpenMetrics text exposition: rendering, name mapping, negotiation."""

import pytest

from repro.telemetry import (
    MetricsRegistry,
    OPENMETRICS_CONTENT_TYPE,
    TelemetryHub,
    negotiates_openmetrics,
    render_openmetrics,
)
from repro.telemetry.hub import REQUEST_SECONDS_BUCKETS


def lines_of(registry):
    return render_openmetrics(registry).splitlines()


class TestRendering:
    def test_document_shape(self):
        registry = MetricsRegistry()
        registry.counter("device.ops").inc(3)
        registry.gauge("mem.row_buffer_hit_rate").set(0.5)
        text = render_openmetrics(registry)
        assert text.endswith("# EOF\n")
        lines = text.splitlines()
        assert "# TYPE coruscant_device_ops counter" in lines
        assert "coruscant_device_ops_total 3" in lines
        assert "# TYPE coruscant_mem_row_buffer_hit_rate gauge" in lines
        assert "coruscant_mem_row_buffer_hit_rate 0.5" in lines

    def test_empty_registry_is_build_info_plus_eof(self):
        from repro import __version__

        assert render_openmetrics(MetricsRegistry()) == (
            "# TYPE coruscant_build_info gauge\n"
            f'coruscant_build_info{{version="{__version__}"}} 1\n'
            "# EOF\n"
        )

    def test_unit_lines_follow_type_for_seconds_families(self):
        hub = TelemetryHub()
        hub.service_request("add", "ok", 0.002)
        lines = lines_of(hub.metrics)
        fam = "coruscant_service_request_seconds"
        type_index = lines.index(f"# TYPE {fam} histogram")
        assert lines[type_index + 1] == f"# UNIT {fam} seconds"
        # Non-seconds families carry no UNIT line.
        assert not any(
            line.startswith("# UNIT") and fam not in line
            for line in lines
        )

    def test_gauge_families_never_end_in_total(self):
        registry = MetricsRegistry()
        registry.gauge("scrub.repaired.total").set(3)
        lines = lines_of(registry)
        assert "# TYPE coruscant_scrub_repaired gauge" in lines
        assert "coruscant_scrub_repaired 3" in lines
        assert not any(
            "coruscant_scrub_repaired_total" in line for line in lines
        )

    def test_slo_gauges_map_to_labelled_families(self):
        registry = MetricsRegistry()
        registry.gauge("slo.latency.burn_rate.fast").set(1.5)
        registry.gauge("slo.latency.compliance").set(0.995)
        lines = lines_of(registry)
        assert "# TYPE coruscant_slo_burn_rate gauge" in lines
        assert (
            'coruscant_slo_burn_rate{slo="latency",window="fast"} 1.5'
            in lines
        )
        assert 'coruscant_slo_compliance{slo="latency"} 0.995' in lines

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("resilience.retry_depth", (1, 2, 3))
        for value in (1, 1, 2, 9):
            hist.observe(value)
        lines = lines_of(registry)
        fam = "coruscant_resilience_retry_depth"
        assert f"# TYPE {fam} histogram" in lines
        assert f'{fam}_bucket{{le="1.0"}} 2' in lines
        assert f'{fam}_bucket{{le="2.0"}} 3' in lines
        assert f'{fam}_bucket{{le="3.0"}} 3' in lines
        assert f'{fam}_bucket{{le="+Inf"}} 4' in lines
        assert f"{fam}_sum 13" in lines
        assert f"{fam}_count 4" in lines

    def test_dynamic_segments_become_labels(self):
        hub = TelemetryHub()
        hub.service_admitted("multiply", "batch")
        hub.service_rejected("add", "queue_full")
        hub.service_shed("add", "queue")
        hub.service_request("multiply", "ok", 0.002)
        hub.service_queue_depth("storm", "add", 5)
        hub.resilient_op(2, "recovered")
        lines = lines_of(hub.metrics)
        assert 'coruscant_service_admitted_total{priority="batch"} 1' in lines
        assert 'coruscant_service_kernel_admitted_total{kernel="multiply"} 1' in lines
        assert 'coruscant_service_rejected_total{reason="queue_full"} 1' in lines
        assert 'coruscant_service_shed_total{stage="queue"} 1' in lines
        assert 'coruscant_service_requests_total{status="ok"} 1' in lines
        assert (
            'coruscant_service_queue_depth{kernel="add",profile="storm"} 5'
            in lines
        )
        assert 'coruscant_resilience_verdict_total{verdict="recovered"} 1' in lines

    def test_per_kernel_latency_merges_into_one_family(self):
        hub = TelemetryHub()
        hub.service_request("add", "ok", 0.002)
        hub.service_request("multiply", "ok", 0.004)
        lines = lines_of(hub.metrics)
        fam = "coruscant_service_request_seconds"
        # One TYPE header covers the bare aggregate and both kernels.
        assert lines.count(f"# TYPE {fam} histogram") == 1
        assert f'{fam}_bucket{{kernel="add",le="+Inf"}} 1' in lines
        assert f'{fam}_bucket{{kernel="multiply",le="+Inf"}} 1' in lines
        assert f'{fam}_bucket{{le="+Inf"}} 2' in lines
        assert f"{fam}_count 2" in lines
        # Bucket edges render as floats per the exposition grammar.
        edge = REQUEST_SECONDS_BUCKETS[0]
        assert f'{fam}_bucket{{le="{edge}"}} 0' in lines

    def test_families_are_sorted_and_unique(self):
        hub = TelemetryHub()
        hub.service_admitted("add", "interactive")
        hub.device_op("shift", 4, 0.6)
        text = render_openmetrics(hub.metrics)
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE")
        ]
        assert type_lines == sorted(type_lines)
        families = [line.split()[2] for line in type_lines]
        assert len(families) == len(set(families))


class TestNegotiation:
    @pytest.mark.parametrize(
        "accept",
        [
            "application/openmetrics-text",
            "application/openmetrics-text; version=1.0.0",
            "text/plain",
            "application/json, text/plain;q=0.5",
            "TEXT/PLAIN",
        ],
    )
    def test_text_forms_negotiate(self, accept):
        assert negotiates_openmetrics(accept) is True

    @pytest.mark.parametrize(
        "accept", [None, "", "application/json", "*/*", "text/html"]
    )
    def test_json_stays_default(self, accept):
        assert negotiates_openmetrics(accept) is False

    def test_content_type_names_the_version(self):
        assert "openmetrics-text" in OPENMETRICS_CONTENT_TYPE
        assert "version=1.0.0" in OPENMETRICS_CONTENT_TYPE
