"""End-to-end tests for the kernel gateway.

Three layers: the in-process client (full admission/retry/breaker
pipeline, no sockets), the raw HTTP front end, and the `serve` CLI as
a subprocess with a real SIGTERM drain.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.service.admission import AdmissionPolicy
from repro.service.breaker import OPEN, RequestBreakerConfig
from repro.service.client import ServiceClient
from repro.service.dispatch import RetryConfig
from repro.service.gateway import Gateway
from repro.service.profiles import DeviceProfile, default_profiles
from repro.service.protocol import (
    KERNELS,
    PRIORITY_BATCH,
    KernelRequest,
    ServiceReject,
)
from repro.utils.deadline import Deadline

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="class")
def client():
    with ServiceClient(workers=1) as active:
        yield active


class TestClientKernels:
    def test_add(self, client):
        response = client.request(
            "add", {"words": [1, 2, 4, 8], "n_bits": 8}
        )
        assert response.status == "ok"
        assert response.body["result"]["sum"] == 15
        assert response.body["result"]["cycles"] > 0

    def test_multiply(self, client):
        response = client.request(
            "multiply", {"a": 12, "b": 11, "n_bits": 8}
        )
        assert response.status == "ok"
        assert response.body["result"]["product"] == 132

    def test_popcount(self, client):
        response = client.request(
            "popcount", {"bits": [1, 0, 1, 1, 0, 1]}
        )
        assert response.status == "ok"
        assert response.body["result"]["count"] == 4

    def test_bulk_op(self, client):
        response = client.request(
            "bulk-op",
            {"op": "xor", "operands": [[1, 0, 1], [1, 1, 0]]},
        )
        assert response.status == "ok"
        assert response.body["result"]["bits"] == [0, 1, 1]

    def test_bitmap_query(self, client):
        response = client.request(
            "bitmap-query", {"users": 16, "weeks": 2, "seed": 7}
        )
        assert response.status == "ok"
        result = response.body["result"]
        assert 0 <= result["count"] <= 16
        assert result["tr_passes"] > 0

    def test_cnn_infer(self, client):
        response = client.request(
            "cnn-infer", {"size": 4, "seed": 3}, budget_s=60.0
        )
        assert response.status == "ok"
        assert len(response.body["result"]["logits"]) == 4

    def test_envelope_shape(self, client):
        response = client.request("add", {"words": [1, 1], "n_bits": 4})
        body = response.body
        assert body["schema"] == "coruscant-service/1"
        assert body["kernel"] == "add"
        assert body["profile"] == "default"
        assert body["request_id"] > 0
        assert body["retries"] == []

    def test_bad_payload_rejected(self, client):
        response = client.request("add", {"words": "nope"})
        assert response.http_status == 400
        assert response.status == "rejected"
        assert response.body["error"] == "bad_request"

    def test_unknown_kernel_rejected(self, client):
        response = client.request("transmogrify", {})
        assert response.http_status == 400
        assert "unknown kernel" in response.body["message"]

    def test_unknown_profile_rejected(self, client):
        response = client.request(
            "add", {"words": [1, 2], "n_bits": 4}, profile="nope"
        )
        assert response.http_status == 400
        assert "unknown profile" in response.body["message"]

    def test_expired_budget_shed_with_504(self, client):
        response = client.request(
            "add", {"words": [1, 2], "n_bits": 4}, budget_s=1e-9
        )
        assert response.http_status == 504
        assert response.status == "expired"
        assert response.body["error"] == "deadline_exceeded"

    def test_batch_degrades_instead_of_failing_whole(self, client):
        items = [
            {"words": [1, 2], "n_bits": 4},
            {"words": [3, 4], "n_bits": 4},
            {"words": "broken"},
        ]
        response = client.request("add", {"items": items})
        assert response.http_status == 200
        assert response.status == "degraded"
        results = response.body["results"]
        assert results[0]["sum"] == 3
        assert results[1]["sum"] == 7
        assert results[2] is None
        assert response.body["incomplete"] == [
            {"index": 2, "reason": "bad_request"}
        ]

    def test_batch_all_ok(self, client):
        items = [{"words": [1, n], "n_bits": 4} for n in range(3)]
        response = client.request("add", {"items": items})
        assert response.status == "ok"
        assert [r["sum"] for r in response.body["results"]] == [1, 2, 3]

    def test_healthz_reports_profiles(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        snapshot = body["profiles"]["default"]
        assert snapshot["breaker"]["state"] == "CLOSED"
        assert set(snapshot["queue_depths"]) == set(KERNELS)

    def test_readyz_ready(self, client):
        body = client.readyz()
        assert body["ready"] is True
        assert body["draining"] is False


class TestAdmissionBackpressure:
    def run(self, coro):
        return asyncio.run(coro)

    def gateway(self):
        return Gateway(
            admission=AdmissionPolicy(capacity=1, high_reserve=1)
        )

    def request(self, priority="interactive"):
        return KernelRequest(
            kernel="add",
            payload={"words": [1, 2], "n_bits": 4},
            deadline=Deadline.never(),
            priority=priority,
        )

    def test_queue_full_is_429_with_retry_after(self):
        async def scenario():
            dispatcher = self.gateway().dispatchers["default"]
            dispatcher.submit(self.request())
            dispatcher.submit(self.request())
            with pytest.raises(ServiceReject) as exc:
                dispatcher.submit(self.request())
            assert exc.value.http_status == 429
            assert exc.value.error == "queue_full"
            assert exc.value.retry_after > 0

        self.run(scenario())

    def test_batch_refused_while_reserve_open(self):
        async def scenario():
            dispatcher = self.gateway().dispatchers["default"]
            dispatcher.submit(self.request(PRIORITY_BATCH))
            with pytest.raises(ServiceReject):
                dispatcher.submit(self.request(PRIORITY_BATCH))
            # The reserve slot still admits interactive traffic.
            dispatcher.submit(self.request())

        self.run(scenario())

    def test_pre_expired_deadline_refused_at_admission(self):
        async def scenario():
            dispatcher = self.gateway().dispatchers["default"]
            request = self.request()
            request.deadline = Deadline(0.0)
            with pytest.raises(ServiceReject) as exc:
                dispatcher.submit(request)
            assert exc.value.http_status == 504

        self.run(scenario())


class TestBreakerIsolation:
    def test_storm_profile_opens_while_default_serves(self):
        profiles = default_profiles(
            {
                "storm": DeviceProfile(
                    name="storm", tr_fault_rate=0.2, seed=11
                )
            }
        )
        gateway = Gateway(
            profiles=profiles,
            breaker=RequestBreakerConfig(
                window=8, min_samples=4, trip_threshold=0.5,
                open_seconds=30.0, probe_requests=2,
            ),
            retry=RetryConfig(attempts=2, base=0.001, cap=0.002),
            workers=1,
        )
        with ServiceClient(gateway=gateway) as client:
            statuses = []
            for _ in range(16):
                response = client.request(
                    "add",
                    {"words": [3, 4], "n_bits": 8},
                    profile="storm",
                )
                statuses.append(
                    response.body.get("error", response.status)
                )
                if "breaker_open" in statuses:
                    break
            assert "breaker_open" in statuses
            snap = gateway.dispatchers["storm"].breaker.snapshot()
            assert snap["state"] == OPEN
            # The healthy profile is untouched by its neighbour's storm.
            response = client.request(
                "add", {"words": [3, 4], "n_bits": 8}
            )
            assert response.status == "ok"
            assert client.readyz()["ready"] is True


class TestHttpServer:
    def run(self, coro):
        return asyncio.run(coro)

    async def http(self, port, method, path, body=None):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", port
        )
        payload = json.dumps(body).encode() if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: localhost\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        await writer.drain()
        raw = await reader.read()
        writer.close()
        status = int(raw.split(b" ", 2)[1])
        headers, _, content = raw.partition(b"\r\n\r\n")
        return status, json.loads(content), headers.decode("latin-1")

    def test_http_surface(self):
        async def scenario():
            gateway = Gateway(port=0, workers=1)
            await gateway.start()
            try:
                port = gateway.port
                status, body, _ = await self.http(
                    port, "GET", "/healthz"
                )
                assert status == 200 and body["status"] == "ok"
                status, body, _ = await self.http(
                    port, "GET", "/readyz"
                )
                assert status == 200 and body["ready"] is True
                status, body, _ = await self.http(
                    port, "GET", "/metrics"
                )
                assert status == 200 and "counters" in body
                status, body, _ = await self.http(
                    port, "POST", "/v1/add",
                    {"payload": {"words": [20, 22], "n_bits": 8}},
                )
                assert status == 200
                assert body["result"]["sum"] == 42
                status, body, _ = await self.http(
                    port, "POST", "/v1/transmogrify", {"payload": {}}
                )
                assert status == 400
                status, body, _ = await self.http(
                    port, "GET", "/nope"
                )
                assert status == 404
                status, body, _ = await self.http(
                    port, "DELETE", "/v1/add", {}
                )
                assert status == 405
            finally:
                await gateway.shutdown()

        self.run(scenario())

    def test_shutdown_refuses_new_then_drains(self):
        async def scenario():
            gateway = Gateway(port=0, workers=1)
            await gateway.start()
            await gateway.shutdown()
            response = await gateway.handle(
                "add", {"payload": {"words": [1, 2], "n_bits": 4}}
            )
            assert response.http_status == 503
            assert response.body["error"] == "draining"
            assert "Retry-After" in response.headers

        self.run(scenario())


class TestServeCliSigterm:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        port_file = tmp_path / "port"
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--port-file", str(port_file),
                "--workers", "1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists():
                assert proc.poll() is None, proc.communicate()[1]
                assert time.monotonic() < deadline
                time.sleep(0.05)
            port = int(port_file.read_text())

            responses = []

            def fire():
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/v1/add",
                    data=json.dumps(
                        {"payload": {"words": [5, 6], "n_bits": 8}}
                    ).encode(),
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=30) as r:
                    responses.append(json.loads(r.read()))

            threads = [
                threading.Thread(target=fire) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.2)
            proc.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=30)
            stdout, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, stdout
        assert "drained clean" in stdout
        # Every request admitted before the drain got its answer.
        assert len(responses) == 4
        assert all(r["status"] == "ok" for r in responses)
        assert all(r["result"]["sum"] == 11 for r in responses)

class TestObservabilityPipeline:
    """The tentpole contract: one causally-linked trace per request."""

    def test_one_trace_spans_gateway_to_resilience(self, tmp_path):
        from repro.telemetry import (
            EventLog,
            MemorySink,
            TelemetryHub,
            Tracer,
            chrome_trace,
        )

        hub = TelemetryHub(
            tracer=Tracer(), events=EventLog(MemorySink())
        )
        gateway = Gateway(workers=1, telemetry=hub)
        with ServiceClient(gateway=gateway) as client:
            response = client.request(
                "add", {"words": [5, 6], "n_bits": 8}
            )
        assert response.status == "ok"
        trace_id = response.body["trace_id"]
        assert trace_id

        document = chrome_trace(hub.tracer)
        spans = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "X"
            and e.get("args", {}).get("trace_id") == trace_id
        ]
        names = {e["name"] for e in spans}
        # The request's causal chain crosses the gateway event loop,
        # the dispatcher coroutine, the worker thread, and the
        # resilient executor — all under one trace_id.
        assert {
            "service.request",
            "service.dispatch",
            "service.execute",
            "resilience.op",
        } <= names

        by_name = {e["name"]: e for e in spans}
        # service.execute runs on the worker-pool thread, not the
        # event-loop thread the request span lives on.
        assert (
            by_name["service.execute"]["tid"]
            != by_name["service.request"]["tid"]
        )
        # resilience.op nests inside service.execute on that thread.
        assert (
            by_name["resilience.op"]["tid"]
            == by_name["service.execute"]["tid"]
        )
        # Parent links stitch the chain: dispatch under request,
        # execute under dispatch.
        assert (
            by_name["service.dispatch"]["args"]["parent_span_id"]
            == by_name["service.request"]["args"]["span_id"]
        )
        assert (
            by_name["service.execute"]["args"]["parent_span_id"]
            == by_name["service.dispatch"]["args"]["span_id"]
        )

        # Cross-thread links render as flow event pairs (ph s/f), so
        # Perfetto draws connected arrows instead of orphan tracks.
        flows = [
            e
            for e in document["traceEvents"]
            if e["ph"] in ("s", "f")
        ]
        assert flows, "expected flow events linking the threads"
        starts = {e["id"] for e in flows if e["ph"] == "s"}
        finishes = {e["id"] for e in flows if e["ph"] == "f"}
        assert starts == finishes
        execute_flow = by_name["service.execute"]["args"]["span_id"]
        assert execute_flow in starts

        # The event log saw the same request under the same trace_id.
        correlated = [
            record
            for record in hub.events.sink.records
            if record.get("trace_id") == trace_id
        ]
        events = {record["event"] for record in correlated}
        assert "service.admitted" in events
        assert "service.request.done" in events

    def test_request_ids_survive_restarts(self):
        from repro.utils.streams import process_salt

        gateway = Gateway(workers=1)
        with ServiceClient(gateway=gateway) as client:
            first = client.request(
                "add", {"words": [1, 2], "n_bits": 8}
            )
            second = client.request(
                "add", {"words": [1, 2], "n_bits": 8}
            )
        ids = {first.body["request_id"], second.body["request_id"]}
        assert len(ids) == 2
        # Salt in the high bits: a restarted gateway (new process)
        # cannot mint ids colliding with these in a shared event log.
        assert all(i >> 24 == process_salt() for i in ids)


class TestMetricsContentNegotiation:
    def run(self, coro):
        return asyncio.run(coro)

    async def http_raw(self, port, path, accept=None):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        head = f"GET {path} HTTP/1.1\r\nHost: localhost\r\n"
        if accept is not None:
            head += f"Accept: {accept}\r\n"
        head += "Content-Length: 0\r\n\r\n"
        writer.write(head.encode())
        await writer.drain()
        raw = await reader.read()
        writer.close()
        status = int(raw.split(b" ", 2)[1])
        headers, _, content = raw.partition(b"\r\n\r\n")
        return status, headers.decode("latin-1"), content

    def test_metrics_negotiation(self):
        from repro.telemetry import OPENMETRICS_CONTENT_TYPE

        async def scenario():
            gateway = Gateway(port=0, workers=1)
            await gateway.start()
            try:
                port = gateway.port
                response = await gateway.handle(
                    "add", {"payload": {"words": [3, 4], "n_bits": 8}}
                )
                assert response.status == "ok"

                # Default: the historical JSON snapshot, byte-stable.
                status, headers, content = await self.http_raw(
                    port, "/metrics"
                )
                assert status == 200
                assert "application/json" in headers
                json_body = json.loads(content)
                assert "counters" in json_body
                assert json_body["counters"]["service.requests"] == 1

                # An explicit JSON ask stays JSON too.
                status, headers, content = await self.http_raw(
                    port, "/metrics", accept="application/json"
                )
                assert status == 200
                assert json.loads(content) == json_body

                # OpenMetrics negotiation flips to text exposition.
                status, headers, content = await self.http_raw(
                    port, "/metrics",
                    accept="application/openmetrics-text; version=1.0.0",
                )
                assert status == 200
                assert OPENMETRICS_CONTENT_TYPE in headers
                text = content.decode()
                assert text.endswith("# EOF\n")
                assert (
                    'coruscant_service_requests_total{status="ok"} 1'
                    in text
                )
                assert "# TYPE coruscant_service_request_seconds " in text
                assert 'le="+Inf"' in text

                # text/plain (plain Prometheus scrapers) negotiates too.
                status, headers, content = await self.http_raw(
                    port, "/metrics", accept="text/plain"
                )
                assert status == 200
                assert content.decode().endswith("# EOF\n")
            finally:
                await gateway.shutdown()

        self.run(scenario())
