"""Fault-campaign harness tests, including the PR acceptance criteria."""

import pytest

from repro.reliability.campaign import (
    CampaignConfig,
    run_add_campaign,
    run_cnn_campaign,
    run_recovery_comparison,
)
from repro.reliability.op_error import add_error_probability


class TestCampaignConfig:
    def test_defaults(self):
        config = CampaignConfig()
        assert config.ops == 1000
        assert config.tr_fault_rate == pytest.approx(1e-3)
        assert config.recovery

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(ops=0)
        with pytest.raises(ValueError):
            CampaignConfig(blocksize=8, n_bits=16)

    def test_operand_limit_enforced(self):
        with pytest.raises(ValueError):
            run_add_campaign(CampaignConfig(ops=1, operands=9, trd=7))


class TestAddCampaignAcceptance:
    """ISSUE acceptance: 1000 ops at 1e-3 with recovery on."""

    @pytest.fixture(scope="class")
    def comparison(self):
        return run_recovery_comparison(CampaignConfig(seed=0))

    def test_corrects_at_least_ninety_percent(self, comparison):
        on = comparison["recovery_on"]
        assert on.injected_tr_faults > 0
        assert on.correction_rate >= 0.9
        assert on.detection_rate >= on.correction_rate

    def test_escaped_strictly_below_recovery_off(self, comparison):
        on = comparison["recovery_on"]
        off = comparison["recovery_off"]
        assert off.escaped > 0  # bare runs must actually corrupt results
        assert on.escaped < off.escaped

    def test_recovery_overhead_is_nonzero(self, comparison):
        on = comparison["recovery_on"]
        assert on.overhead_cycles > 0
        assert on.overhead_cycles < on.total_cycles

    def test_summary_is_printable(self, comparison):
        summary = comparison["recovery_on"].summary()
        assert summary["recovery"] is True
        assert summary["detected"] >= summary["corrected"] >= 0
        assert 0.0 <= summary["correction_rate"] <= 1.0

    def test_bare_rate_tracks_analytic_model(self, comparison):
        # The unprotected escape rate should be the same order as the
        # Table V closed form — the campaign validates the model, the
        # model sanity-checks the campaign.
        off = comparison["recovery_off"]
        analytic = off.analytic_op_error_rate
        assert analytic == pytest.approx(
            add_error_probability(16, 1e-3)
        )
        assert off.observed_op_error_rate < 20 * analytic


class TestCnnCampaign:
    def test_voting_protects_conv_layer(self):
        config = CampaignConfig(ops=1, tr_fault_rate=0.02, seed=0)
        on = run_cnn_campaign(config)
        off = run_cnn_campaign(
            CampaignConfig(ops=1, tr_fault_rate=0.02, seed=0,
                           recovery=False)
        )
        assert off.escaped > 0
        assert on.escaped < off.escaped
        assert on.detected > 0
        assert on.overhead_cycles > 0

    def test_fault_free_cnn_is_exact_both_ways(self):
        for recovery in (True, False):
            result = run_cnn_campaign(
                CampaignConfig(ops=1, tr_fault_rate=0.0, recovery=recovery)
            )
            assert result.escaped == 0
            assert result.injected_tr_faults == 0
