"""The deterministic load generator and its CLI regression gate."""

import json

import pytest

from repro.obs import (
    HISTORY_SCHEMA,
    LOADBENCH_SCHEMA,
    LOAD_PROFILES,
    BenchHistory,
    build_schedule,
    run_loadbench,
)
from repro.service.kernels import RUNNERS
from repro.service.protocol import PRIORITIES, ServiceResponse


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = [r.as_dict() for r in build_schedule("mixed", 60, seed=7)]
        b = [r.as_dict() for r in build_schedule("mixed", 60, seed=7)]
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_different_seed_different_schedule(self):
        a = [r.as_dict() for r in build_schedule("mixed", 60, seed=7)]
        b = [r.as_dict() for r in build_schedule("mixed", 60, seed=8)]
        assert a != b

    def test_profiles_draw_only_known_kernels(self):
        for profile, mix in LOAD_PROFILES.items():
            allowed = {kernel for kernel, _weight in mix}
            assert allowed <= set(RUNNERS)
            schedule = build_schedule(profile, 40, seed=1)
            assert {r.kernel for r in schedule} <= allowed
            assert {r.priority for r in schedule} <= set(PRIORITIES)
            assert [r.index for r in schedule] == list(range(40))

    def test_unknown_profile_and_bad_count_raise(self):
        with pytest.raises(ValueError, match="unknown load profile"):
            build_schedule("nope", 10, seed=0)
        with pytest.raises(ValueError, match="requests must be"):
            build_schedule("mixed", 0, seed=0)


class StubClient:
    """Canned-latency client: deterministic documents without a gateway."""

    def __init__(self, statuses=("ok",)):
        self.statuses = statuses
        self.calls = []

    def request(self, kernel, payload, budget_s=None, priority=None):
        self.calls.append((kernel, priority))
        status = self.statuses[(len(self.calls) - 1) % len(self.statuses)]
        return ServiceResponse(200, {"status": status})


class FakeClock:
    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestRunLoadbench:
    def test_document_schema_and_accounting(self):
        client = StubClient()
        doc = run_loadbench(
            profile="arithmetic",
            requests=12,
            seed=3,
            concurrency=3,
            client=client,
        )
        assert doc["schema"] == LOADBENCH_SCHEMA == "coruscant-loadbench/1"
        assert doc["profile"] == "arithmetic"
        assert doc["requests_scheduled"] == 12
        assert doc["requests_completed"] == 12
        assert doc["requests_skipped"] == 0
        assert doc["requests_failed"] == 0
        assert doc["statuses"] == {"ok": 12}
        assert len(client.calls) == 12
        names = [k["name"] for k in doc["kernels"]]
        assert names[0] == "loadbench.overall"
        assert names[-1] == "loadbench.throughput"
        for entry in doc["kernels"]:
            assert entry["wall_seconds_min"] >= 0.0
            assert (
                entry["wall_seconds_median"] >= entry["wall_seconds_min"]
            )

    def test_failed_statuses_are_counted(self):
        client = StubClient(statuses=("ok", "error", "degraded"))
        doc = run_loadbench(
            profile="mixed", requests=9, seed=0, concurrency=1,
            client=client,
        )
        # degraded delivered partial results; only error counts failed.
        assert doc["requests_failed"] == 3
        assert doc["statuses"]["error"] == 3

    def test_duration_cap_counts_skipped(self):
        client = StubClient()
        doc = run_loadbench(
            profile="mixed",
            requests=10,
            seed=0,
            concurrency=1,
            duration=5.0,
            client=client,
            clock=FakeClock(step=1.0),
        )
        assert doc["requests_completed"] == 2
        assert doc["requests_skipped"] == 8
        assert doc["requests_completed"] + doc["requests_skipped"] == 10

    def test_validation(self):
        with pytest.raises(ValueError, match="concurrency"):
            run_loadbench(concurrency=0, client=StubClient())
        with pytest.raises(ValueError, match="duration"):
            run_loadbench(duration=0.0, client=StubClient())

    def test_against_real_gateway(self):
        doc = run_loadbench(
            profile="arithmetic", requests=6, seed=1, concurrency=2
        )
        assert doc["requests_completed"] == 6
        assert doc["requests_failed"] == 0
        assert doc["statuses"] == {"ok": 6}
        assert doc["throughput_rps"] > 0


class TestLoadbenchCli:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_history_record_and_clean_exit(self, tmp_path, capsys):
        history = tmp_path / "LOADBENCH_history.jsonl"
        code, _out = self.run_cli(
            [
                "loadbench", "--requests", "4", "--seed", "2",
                "--history", str(history), "--json",
            ],
            capsys,
        )
        assert code == 0
        entries = BenchHistory(str(history)).load()
        assert len(entries) == 1
        assert entries[0]["schema"] == HISTORY_SCHEMA
        assert entries[0]["bench"]["schema"] == LOADBENCH_SCHEMA

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema": LOADBENCH_SCHEMA,
                    "kernels": [
                        {
                            "name": "loadbench.overall",
                            "wall_seconds_min": 1e-9,
                            "wall_seconds_median": 1e-9,
                        },
                        {
                            "name": "loadbench.throughput",
                            "wall_seconds_min": 1e-9,
                            "wall_seconds_median": 1e-9,
                        },
                    ],
                }
            )
        )
        code, out = self.run_cli(
            [
                "loadbench", "--requests", "4", "--no-history",
                "--compare", str(baseline), "--json",
            ],
            capsys,
        )
        assert code == 1
        document = json.loads(out)
        assert document["regressed"] is True
        assert document["exit_status"] == 1

    def test_bad_flags_are_usage_errors(self, capsys):
        from repro.cli import main

        for argv in (
            ["loadbench", "--requests", "0"],
            ["loadbench", "--concurrency", "0"],
            ["loadbench", "--duration", "-1"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            capsys.readouterr()
