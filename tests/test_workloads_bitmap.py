"""Unit tests for the bitmap-index workload."""

import numpy as np
import pytest

from repro.workloads.bitmap import (
    BitmapDatabase,
    BitmapQuery,
    weekly_activity_database,
    weekly_query,
)


class TestDatabase:
    def test_random_density(self):
        db = BitmapDatabase(num_items=100_000)
        db.add_random("x", density=0.3, seed=1)
        assert db.bitmap("x").mean() == pytest.approx(0.3, abs=0.02)

    def test_add_explicit(self):
        db = BitmapDatabase(num_items=4)
        db.add("y", np.array([1, 0, 1, 0]))
        assert list(db.bitmap("y")) == [1, 0, 1, 0]

    def test_shape_checked(self):
        db = BitmapDatabase(num_items=4)
        with pytest.raises(ValueError):
            db.add("y", np.array([1, 0]))

    def test_density_validation(self):
        db = BitmapDatabase(num_items=4)
        with pytest.raises(ValueError):
            db.add_random("x", density=1.5)


class TestQuery:
    def test_conjunction_count(self):
        db = BitmapDatabase(num_items=8)
        db.add("a", np.array([1, 1, 1, 1, 0, 0, 0, 0]))
        db.add("b", np.array([1, 1, 0, 0, 1, 1, 0, 0]))
        assert BitmapQuery(["a", "b"]).evaluate(db) == 2

    def test_single_criterion(self):
        db = BitmapDatabase(num_items=4)
        db.add("a", np.array([1, 0, 1, 0]))
        assert BitmapQuery(["a"]).evaluate(db) == 2

    def test_rows_calculation(self):
        db = BitmapDatabase(num_items=1000)
        q = BitmapQuery(["a"])
        assert q.rows(db, row_bits=512) == 2

    def test_empty_criteria_rejected(self):
        with pytest.raises(ValueError):
            BitmapQuery([])


class TestWeeklyWorkload:
    def test_paper_population(self):
        db = weekly_activity_database(num_users=10_000)
        assert set(db.names()) == {"male", "week1", "week2", "week3", "week4"}

    def test_weekly_query_operands(self):
        # w weeks + the male bitmap.
        for w in (2, 3, 4):
            assert weekly_query(w).num_operands == w + 1

    def test_query_answer_plausible(self):
        db = weekly_activity_database(num_users=50_000)
        count = weekly_query(2).evaluate(db)
        # 0.5 x 0.3 x 0.3 of the population, roughly.
        assert count == pytest.approx(50_000 * 0.5 * 0.09, rel=0.2)

    def test_weeks_validation(self):
        with pytest.raises(ValueError):
            weekly_query(0)
