"""Property-based tests for the layout transforms."""

from hypothesis import given, settings, strategies as st

from repro.sim.layout import pack_blocks, transpose_words, unpack_blocks
from repro.utils.bitops import bits_to_int


class TestTransposeProperty:
    @given(
        st.lists(st.integers(0, 255), min_size=1, max_size=5),
    )
    @settings(max_examples=50)
    def test_rows_encode_words(self, words):
        rows = transpose_words(words, 8, 32)
        for word, row in zip(words, rows):
            assert bits_to_int(row) == word

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=7))
    @settings(max_examples=30)
    def test_width_always_tracks(self, words):
        rows = transpose_words(words, 4, 24)
        assert all(len(r) == 24 for r in rows)


class TestBlockPackingProperty:
    @given(
        st.sampled_from([8, 16, 32]),
        st.data(),
    )
    @settings(max_examples=50)
    def test_roundtrip(self, blocksize, data):
        capacity = 512 // blocksize
        words = data.draw(
            st.lists(
                st.integers(0, (1 << blocksize) - 1),
                min_size=1,
                max_size=min(capacity, 10),
            )
        )
        row = pack_blocks(words, blocksize, 512)
        assert unpack_blocks(row, blocksize, count=len(words)) == words

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=8))
    @settings(max_examples=30)
    def test_padding_is_zero(self, words):
        row = pack_blocks(words, 8, 128)
        assert all(b == 0 for b in row[len(words) * 8 :])
