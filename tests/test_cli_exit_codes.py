"""Conformance test for the process exit-code contract.

Every CLI entry point speaks the one vocabulary defined in
:mod:`repro.exitcodes`: 0 ok, 1 hard error, 2 usage, 3 degraded.
Each class below pins one code to a real command invocation.
"""

import json
import socket

import pytest

from repro import cli
from repro.exitcodes import (
    EXIT_DEGRADED,
    EXIT_ERROR,
    EXIT_OK,
    EXIT_USAGE,
)


class TestContract:
    def test_values(self):
        assert EXIT_OK == 0
        assert EXIT_ERROR == 1
        assert EXIT_USAGE == 2
        assert EXIT_DEGRADED == 3

    def test_cli_aliases_share_the_contract(self):
        # The command-specific names are readings of the shared codes,
        # not a second vocabulary.
        assert cli.EXIT_UNCORRECTABLE == EXIT_ERROR
        assert cli.EXIT_INCOMPLETE_SHARDS == EXIT_DEGRADED

    def test_usage_matches_argparse(self):
        # argparse exits 2 on its own; EXIT_USAGE must agree with it.
        with pytest.raises(SystemExit) as exc:
            cli.main(["bogus-command"])
        assert exc.value.code == EXIT_USAGE


class TestExitOk:
    def test_clean_command_exits_zero(self, capsys):
        assert cli.main(["add", "1", "2", "3"]) == EXIT_OK
        capsys.readouterr()


class TestExitUsage:
    @pytest.mark.parametrize(
        "argv",
        [
            ["campaign", "--ops", "0"],
            ["serve", "--queue-capacity", "0"],
            ["serve", "--high-reserve", "-1"],
            ["serve", "--retry-attempts", "0"],
            ["serve", "--breaker-open-seconds", "0"],
            ["serve", "--default-budget-s", "0"],
            ["serve", "--profile", "storm:not_a_field=1"],
        ],
    )
    def test_bad_invocations_exit_two(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.main(argv)
        assert exc.value.code == EXIT_USAGE
        capsys.readouterr()


class TestExitError:
    def test_serve_bind_failure_exits_one(self, capsys):
        # Occupy a port, then ask serve to bind it.
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            code = cli.main(["serve", "--port", str(port)])
        finally:
            blocker.close()
        assert code == EXIT_ERROR
        assert "serve failed" in capsys.readouterr().err


class TestExitDegraded:
    def test_incomplete_shards_exit_three(self, tmp_path, capsys):
        journal = tmp_path / "journal"
        code = cli.main(
            ["campaign", "--ops", "40", "--shards", "2",
             "--fault-rate", "0.01", "--journal", str(journal),
             "--max-shard-retries", "0", "--json",
             "--inject-worker-crash", "1:30:kill-always"]
        )
        assert code == EXIT_DEGRADED
        document = json.loads(capsys.readouterr().out)
        # Degraded means partial-but-named: the report says exactly
        # which shards are missing.
        assert document["exit_status"] == EXIT_DEGRADED
        assert document["incomplete_shards"] == [1]
