"""Tests for average pooling and parallel segmented TRs."""

import pytest

from repro.arch.dbc import DomainBlockCluster
from repro.core.avgpool import AverageUnit
from repro.device.nanowire import AccessPort, Nanowire
from repro.device.parameters import DeviceParameters


def make_dbc(tracks=32, trd=7):
    return DomainBlockCluster(
        tracks=tracks, domains=32, params=DeviceParameters(trd=trd)
    )


class TestAveragePooling:
    @pytest.mark.parametrize(
        "words", [[4, 8], [1, 3, 5, 7], [10, 20, 30, 40, 50, 60, 70, 80]]
    )
    def test_mean(self, words):
        unit = AverageUnit(make_dbc())
        assert unit.average(words, 8).value == sum(words) // len(words)

    def test_rounds_toward_zero(self):
        unit = AverageUnit(make_dbc())
        assert unit.average([1, 2], 8).value == 1

    def test_single_word(self):
        unit = AverageUnit(make_dbc())
        assert unit.average([99], 8).value == 99

    def test_large_window_uses_reduction(self):
        unit = AverageUnit(make_dbc())
        words = [255] * 16
        assert unit.average(words, 8).value == 255

    def test_non_power_of_two_rejected(self):
        unit = AverageUnit(make_dbc())
        with pytest.raises(ValueError):
            unit.average([1, 2, 3], 8)

    def test_word_width_checked(self):
        unit = AverageUnit(make_dbc())
        with pytest.raises(ValueError):
            unit.average([256, 0], 8)

    def test_cycles_positive(self):
        unit = AverageUnit(make_dbc())
        assert unit.average([2, 4, 6, 8], 8).cycles > 0

    def test_requires_pim(self):
        plain = DomainBlockCluster(tracks=8, domains=32, pim_enabled=False)
        with pytest.raises(ValueError):
            AverageUnit(plain)


class TestSegmentedParallelTr:
    def make_wire(self):
        return Nanowire(
            32,
            [AccessPort(14), AccessPort(20)],
            params=DeviceParameters(trd=7),
        )

    def test_disjoint_segments_counted(self):
        wire = self.make_wire()
        for row in (2, 3, 10, 11, 12):
            wire.poke_row(row, 1)
        lo = wire.row_physical_position(2)
        hi = wire.row_physical_position(10)
        levels = wire.transverse_read_segments(
            [(lo, lo + 3), (hi, hi + 4)]
        )
        assert levels == [2, 3]

    def test_single_tr_cost_for_batch(self):
        wire = self.make_wire()
        before = wire.stats.count("transverse_read")
        lo = wire.row_physical_position(0)
        wire.transverse_read_segments([(lo, lo + 2), (lo + 5, lo + 8)])
        assert wire.stats.count("transverse_read") == before + 1

    def test_adjacent_segments_rejected(self):
        wire = self.make_wire()
        lo = wire.row_physical_position(0)
        with pytest.raises(ValueError):
            wire.transverse_read_segments([(lo, lo + 3), (lo + 4, lo + 6)])

    def test_overlapping_segments_rejected(self):
        wire = self.make_wire()
        lo = wire.row_physical_position(0)
        with pytest.raises(ValueError):
            wire.transverse_read_segments([(lo, lo + 4), (lo + 2, lo + 6)])

    def test_segment_size_limited_by_trd(self):
        wire = self.make_wire()
        lo = wire.row_physical_position(0)
        with pytest.raises(ValueError):
            wire.transverse_read_segments([(lo, lo + 10)])

    def test_empty_batch(self):
        wire = self.make_wire()
        assert wire.transverse_read_segments([]) == []
