"""Coverage for the facade under fault configuration and misc paths."""

import pytest

from repro import CoruscantSystem, FaultConfig, MemoryGeometry
from repro.sim.sensitivity import trd_sweep


class TestSystemWithFaults:
    def test_fault_config_threads_through(self):
        system = CoruscantSystem(
            trd=7,
            geometry=MemoryGeometry(tracks_per_dbc=32),
            fault_config=FaultConfig(tr_fault_rate=1.0, seed=3),
        )
        dbc = system.pim_dbc()
        dbc.transverse_read_all()
        assert dbc.injector.tr_faults_injected == 32

    def test_faulty_system_can_err(self):
        system = CoruscantSystem(
            trd=7,
            geometry=MemoryGeometry(tracks_per_dbc=32),
            fault_config=FaultConfig(tr_fault_rate=0.3, seed=5),
        )
        errors = 0
        for t in range(20):
            words = [(t * 13 + i) % 256 for i in range(5)]
            if system.add(words, n_bits=8).value != sum(words):
                errors += 1
        assert errors > 0

    def test_clean_system_never_errs(self):
        system = CoruscantSystem(
            trd=7, geometry=MemoryGeometry(tracks_per_dbc=32)
        )
        for t in range(10):
            words = [(t * 13 + i) % 200 for i in range(5)]
            assert system.add(words, n_bits=8).value == sum(words)


class TestSensitivitySweep:
    def test_sweep_structure(self):
        points = trd_sweep()
        assert set(points) == {3, 5, 7}
        for trd, p in points.items():
            assert p.trd == trd
            assert p.add_cycles_8bit > 0
            assert 0 < p.area_overhead_pct < 20

    def test_known_anchors(self):
        points = trd_sweep()
        assert points[7].mult_cycles_8bit == 64
        assert points[3].add_cycles_8bit == 19
        assert points[7].area_overhead_pct == pytest.approx(10.0, abs=0.2)
