"""Unit tests for constant-multiplication planning."""

import pytest

from repro.core.booth import Term, plan_constant_multiply


class TestPlanCorrectness:
    @pytest.mark.parametrize(
        "constant",
        [0, 1, 2, 3, 5, 7, 9, 15, 16, 17, 100, 255, 515, 1000, 20061, 65535],
    )
    def test_plan_evaluates_to_constant(self, constant):
        plan = plan_constant_multiply(constant, trd=7)
        assert plan.evaluate(1) == constant
        assert plan.evaluate(37) == 37 * constant

    @pytest.mark.parametrize("trd", [3, 5, 7])
    def test_all_trds(self, trd):
        for constant in (9, 255, 20061):
            plan = plan_constant_multiply(constant, trd=trd)
            assert plan.evaluate(11) == 11 * constant

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            plan_constant_multiply(-1)


class TestPlanQuality:
    def test_paper_example_two_steps(self):
        # Section III-D1: 20061*A takes two addition steps at TRD 7.
        plan = plan_constant_multiply(20061, trd=7)
        assert plan.num_additions == 2

    def test_power_of_two_is_shift_only(self):
        plan = plan_constant_multiply(64, trd=7)
        assert plan.num_additions <= 1

    def test_step_budget_respected(self):
        for constant in (20061, 65535, 123456789):
            for trd in (3, 5, 7):
                plan = plan_constant_multiply(constant, trd=trd)
                budget = 5 if trd == 7 else (3 if trd == 5 else 2)
                for step in plan.steps:
                    assert len(step.terms) <= budget

    def test_better_than_naive_binary(self):
        # 0xFFFF has 16 ones; CSD + factoring should need far fewer
        # than ceil(16/5) + chaining.
        plan = plan_constant_multiply(0xFFFF, trd=7)
        assert plan.num_additions <= 2

    def test_describe(self):
        plan = plan_constant_multiply(9, trd=7)
        text = plan.steps[0].describe()
        assert "A<<" in text


class TestTerm:
    def test_describe_sign(self):
        assert Term("A", 3).describe() == "+A<<3"
        assert Term("A", 0, negate=True).describe() == "-A<<0"
