"""Every TelemetryHub service_*/shard_* hook: metrics, events, threads."""

import threading

import pytest

from repro.telemetry import EventLog, MemorySink, TelemetryHub


@pytest.fixture
def hub():
    return TelemetryHub(events=EventLog(MemorySink()))


def events_named(hub, name):
    return [e for e in hub.events.sink.records if e["event"] == name]


class TestServiceHooks:
    def test_service_admitted(self, hub):
        hub.service_admitted("add", "interactive", trace_id="t1")
        counters = hub.metrics_dict()["counters"]
        assert counters["service.admitted"] == 1
        assert counters["service.admitted.interactive"] == 1
        assert counters["service.add.admitted"] == 1
        (event,) = events_named(hub, "service.admitted")
        assert event["kernel"] == "add"
        assert event["priority"] == "interactive"
        assert event["trace_id"] == "t1"

    def test_service_rejected(self, hub):
        hub.service_rejected("add", "queue_full", trace_id="t2")
        counters = hub.metrics_dict()["counters"]
        assert counters["service.rejected"] == 1
        assert counters["service.rejected.queue_full"] == 1
        (event,) = events_named(hub, "service.rejected")
        assert event["reason"] == "queue_full"
        assert event["trace_id"] == "t2"

    def test_service_shed(self, hub):
        hub.service_shed("multiply", "queue", trace_id="t3")
        counters = hub.metrics_dict()["counters"]
        assert counters["service.shed"] == 1
        assert counters["service.shed.queue"] == 1
        (event,) = events_named(hub, "service.shed")
        assert event["stage"] == "queue"

    def test_service_retry(self, hub):
        hub.service_retry("popcount", trace_id="t4")
        counters = hub.metrics_dict()["counters"]
        assert counters["service.retries"] == 1
        assert counters["service.popcount.retries"] == 1
        (event,) = events_named(hub, "service.retry")
        assert event["kernel"] == "popcount"

    def test_service_request(self, hub):
        hub.service_request("add", "ok", 0.012, trace_id="t5")
        snapshot = hub.metrics_dict()
        assert snapshot["counters"]["service.requests"] == 1
        assert snapshot["counters"]["service.status.ok"] == 1
        overall = snapshot["histograms"]["service.request_seconds"]
        per_kernel = snapshot["histograms"]["service.add.request_seconds"]
        assert overall["count"] == 1 and per_kernel["count"] == 1
        assert overall["sum"] == pytest.approx(0.012)
        (event,) = events_named(hub, "service.request.done")
        assert event["status"] == "ok"
        assert event["seconds"] == pytest.approx(0.012)
        assert event["trace_id"] == "t5"

    def test_service_queue_depth(self, hub):
        hub.service_queue_depth("storm", "add", 7)
        gauges = hub.metrics_dict()["gauges"]
        assert gauges["service.queue_depth.storm.add"] == 7

    def test_service_breaker_transition(self, hub):
        hub.service_breaker_transition("storm", "CLOSED", "OPEN")
        counters = hub.metrics_dict()["counters"]
        assert counters["service.breaker.transitions"] == 1
        assert counters["service.breaker.to_open"] == 1
        (event,) = events_named(hub, "service.breaker.transition")
        assert event["src"] == "CLOSED" and event["dst"] == "OPEN"
        # The transition is also pinned on the trace timeline.
        assert any(
            i["name"] == "service.breaker.transition"
            for i in hub.tracer.instants
        )

    def test_service_drained(self, hub):
        hub.service_drained(completed=9, dropped=1)
        counters = hub.metrics_dict()["counters"]
        assert counters["service.drain.completed"] == 9
        assert counters["service.drain.dropped"] == 1
        (event,) = events_named(hub, "service.drained")
        assert event["completed"] == 9 and event["dropped"] == 1


class TestCampaignAndResilienceHooks:
    def test_shard_attempt_completed(self, hub):
        hub.shard_attempt(0, 1.5, "completed")
        snapshot = hub.metrics_dict()
        counters = snapshot["counters"]
        assert counters["campaign.shard_attempts"] == 1
        assert counters["campaign.shard_completed"] == 1
        assert "campaign.shard_retries" not in counters
        hist = snapshot["histograms"]["campaign.shard_wall_seconds"]
        assert hist["count"] == 1
        (event,) = events_named(hub, "campaign.shard_attempt")
        assert event["shard"] == 0 and event["status"] == "completed"

    def test_shard_attempt_failure_counts_retry(self, hub):
        hub.shard_attempt(2, 0.2, "crashed")
        counters = hub.metrics_dict()["counters"]
        assert counters["campaign.shard_crashed"] == 1
        assert counters["campaign.shard_retries"] == 1

    def test_shard_incomplete(self, hub):
        hub.shard_incomplete(3)
        counters = hub.metrics_dict()["counters"]
        assert counters["campaign.incomplete_shards"] == 1
        (event,) = events_named(hub, "campaign.shard_incomplete")
        assert event["shard"] == 3

    def test_resilient_op(self, hub):
        hub.resilient_op(2, "recovered")
        snapshot = hub.metrics_dict()
        assert snapshot["counters"]["resilience.ops"] == 1
        assert snapshot["counters"]["resilience.verdict.recovered"] == 1
        assert snapshot["histograms"]["resilience.retry_depth"]["count"] == 1
        (event,) = events_named(hub, "resilience.op")
        assert event["attempts"] == 2 and event["verdict"] == "recovered"

    def test_breaker_transition(self, hub):
        hub.breaker_transition("CLOSED", "OPEN")
        counters = hub.metrics_dict()["counters"]
        assert counters["breaker.transitions"] == 1
        assert counters["breaker.to_open"] == 1
        (event,) = events_named(hub, "breaker.transition")
        assert event["src"] == "CLOSED" and event["dst"] == "OPEN"

    def test_null_event_log_short_circuits(self):
        hub = TelemetryHub()  # NullSink default
        hub.service_admitted("add", "interactive")
        hub.resilient_op(1, "clean")
        assert hub.events.enabled is False
        assert hub.metrics_dict()["counters"]["service.admitted"] == 1


class TestConcurrentRecording:
    def test_metrics_dict_schema_stable_under_concurrent_hooks(self):
        hub = TelemetryHub(events=EventLog(MemorySink(capacity=100000)))
        threads_n, per_thread = 8, 200
        start = threading.Barrier(threads_n)

        def pound(worker):
            start.wait()
            for i in range(per_thread):
                hub.service_admitted("add", "interactive", trace_id=f"t{worker}")
                hub.service_request("add", "ok", 0.001, trace_id=f"t{worker}")
                hub.service_retry("add")
                hub.shard_attempt(worker, 0.01, "completed")
                hub.resilient_op(1, "clean")

        threads = [
            threading.Thread(target=pound, args=(w,))
            for w in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        total = threads_n * per_thread
        snapshot = hub.metrics_dict()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        counters = snapshot["counters"]
        assert counters["service.admitted"] == total
        assert counters["service.requests"] == total
        assert counters["service.retries"] == total
        assert counters["campaign.shard_attempts"] == total
        assert counters["resilience.ops"] == total
        hist = snapshot["histograms"]["service.request_seconds"]
        assert hist["count"] == total
        assert hist["cumulative"][-1] == total
        assert sum(hist["counts"]) == total
        # The event log saw every hook too, in one gapless sequence.
        records = hub.events.sink.records
        assert len(records) == total * 5
        assert {e["seq"] for e in records} == set(range(1, total * 5 + 1))
