"""Unit tests for CORUSCANT multiplication strategies."""

import pytest

from repro.arch.dbc import DomainBlockCluster
from repro.core.multiplication import Multiplier
from repro.device.parameters import DeviceParameters


def make_multiplier(tracks=64, trd=7):
    dbc = DomainBlockCluster(
        tracks=tracks, domains=32, params=DeviceParameters(trd=trd)
    )
    return Multiplier(dbc), dbc


CASES_8BIT = [
    (0, 0),
    (0, 255),
    (1, 1),
    (255, 255),
    (173, 219),
    (2, 128),
    (99, 1),
    (17, 15),
]


class TestOptimized:
    @pytest.mark.parametrize("a,b", CASES_8BIT)
    def test_correct_product(self, a, b):
        mult, _ = make_multiplier()
        assert mult.multiply(a, b, 8).value == a * b

    @pytest.mark.parametrize("trd", [3, 5, 7])
    def test_all_trds(self, trd):
        mult, _ = make_multiplier(trd=trd)
        assert mult.multiply(173, 219, 8).value == 173 * 219

    def test_paper_cycle_count_trd7(self):
        mult, _ = make_multiplier()
        result = mult.multiply(173, 219, 8)
        # Table III reports 64 cycles for the 8-bit TRD-7 multiply.
        assert result.cycles == 64

    def test_trd3_slower_than_trd7(self):
        m3, _ = make_multiplier(trd=3)
        m7, _ = make_multiplier(trd=7)
        c3 = m3.multiply(173, 219, 8).cycles
        c7 = m7.multiply(173, 219, 8).cycles
        assert c3 > c7

    def test_breakdown_phases(self):
        mult, _ = make_multiplier()
        breakdown = mult.multiply(173, 219, 8).breakdown
        assert set(breakdown) >= {"partial_products", "final_add"}

    def test_16bit(self):
        mult, _ = make_multiplier(tracks=64)
        assert mult.multiply(40000, 65535, 16).value == 40000 * 65535

    def test_operand_validation(self):
        mult, _ = make_multiplier()
        with pytest.raises(ValueError):
            mult.multiply(256, 1, 8)
        with pytest.raises(ValueError):
            mult.multiply(-1, 1, 8)

    def test_width_exceeding_tracks_rejected(self):
        mult, _ = make_multiplier(tracks=8)
        with pytest.raises(ValueError):
            mult.multiply(255, 255, 8)  # needs 16 result tracks


class TestArbitrary:
    @pytest.mark.parametrize("a,b", CASES_8BIT)
    def test_correct_product(self, a, b):
        mult, _ = make_multiplier()
        assert mult.multiply_arbitrary(a, b, 8).value == a * b

    def test_sparse_multiplier_cheaper(self):
        mult, _ = make_multiplier()
        dense = mult.multiply_arbitrary(173, 0xFF, 8).cycles
        mult2, _ = make_multiplier()
        sparse = mult2.multiply_arbitrary(173, 0x11, 8).cycles
        assert sparse < dense


class TestConstant:
    @pytest.mark.parametrize("constant", [0, 1, 9, 20061, 255, 515])
    def test_correct_product(self, constant):
        mult, _ = make_multiplier()
        got = mult.multiply_constant(173, constant, 8, result_bits=24)
        assert got.value == (173 * constant) & ((1 << 24) - 1)

    def test_paper_example_two_addition_steps(self):
        mult, _ = make_multiplier()
        result = mult.multiply_constant(7, 20061, 8, result_bits=24)
        assert result.breakdown["addition_steps"] == 2

    def test_constant_beats_naive_repeated_addition(self):
        # "This is a significant improvement over adding 20061 copies
        # of A" (Section III-D1).
        m1, _ = make_multiplier(tracks=64)
        const_cycles = m1.multiply_constant(
            173, 20061, 8, result_bits=24
        ).cycles
        m2, _ = make_multiplier(tracks=64)
        naive_cycles = m2.multiply_naive(
            173, 2006, 8, result_bits=24  # even 10x fewer copies...
        ).cycles
        assert const_cycles < naive_cycles / 10

    def test_plan_mismatch_rejected(self):
        from repro.core.booth import plan_constant_multiply

        mult, _ = make_multiplier()
        plan = plan_constant_multiply(9, trd=7)
        with pytest.raises(ValueError):
            mult.multiply_constant(5, 10, 8, plan=plan)


class TestNaive:
    def test_correct_product(self):
        mult, _ = make_multiplier()
        assert mult.multiply_naive(37, 9, 8).value == 37 * 9

    def test_zero(self):
        mult, _ = make_multiplier()
        assert mult.multiply_naive(37, 0, 8).value == 0

    def test_optimized_beats_naive(self):
        # The ablation the paper motivates with "consider 9A..."
        m1, _ = make_multiplier()
        opt = m1.multiply(200, 217, 8).cycles
        m2, _ = make_multiplier()
        naive = m2.multiply_naive(200, 217, 8).cycles
        assert opt < naive / 5
