"""Unit tests for the PIM logic block (Fig. 4b)."""

import itertools

import pytest

from repro.core.pim_logic import BulkOp, PimLogicBlock, adder_outputs


class TestAdderOutputs:
    def test_binary_decomposition_identity(self):
        # The load-bearing invariant: m == S + 2C + 4C' for all levels.
        for m in range(8):
            s, c, cp = adder_outputs(m)
            assert s + 2 * c + 4 * cp == m

    def test_paper_definitions(self):
        # C is '1' for levels {2,3} and {6,7}; C' for levels >= 4.
        assert [adder_outputs(m)[1] for m in range(8)] == [
            0, 0, 1, 1, 0, 0, 1, 1,
        ]
        assert [adder_outputs(m)[2] for m in range(8)] == [
            0, 0, 0, 0, 1, 1, 1, 1,
        ]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            adder_outputs(8)


class TestBulkTruth:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 7])
    def test_ops_match_python_semantics(self, k):
        block = PimLogicBlock(7)
        for bits in itertools.product((0, 1), repeat=k):
            ones = sum(bits)
            and_pad = (7 - k) + ones  # AND pads with '1's
            assert block.evaluate(BulkOp.OR, ones, k) == (
                1 if any(bits) else 0
            )
            assert block.evaluate(BulkOp.NOR, ones, k) == (
                0 if any(bits) else 1
            )
            assert block.evaluate(BulkOp.AND, and_pad, k) == (
                1 if all(bits) else 0
            )
            assert block.evaluate(BulkOp.NAND, and_pad, k) == (
                0 if all(bits) else 1
            )
            expected_xor = ones & 1
            assert block.evaluate(BulkOp.XOR, ones, k) == expected_xor
            assert block.evaluate(BulkOp.XNOR, ones, k) == 1 - expected_xor

    def test_not_single_operand(self):
        block = PimLogicBlock(7)
        assert block.evaluate(BulkOp.NOT, 0, 1) == 1
        assert block.evaluate(BulkOp.NOT, 1, 1) == 0

    def test_not_rejects_multi_operand(self):
        with pytest.raises(ValueError):
            PimLogicBlock(7).evaluate(BulkOp.NOT, 1, 2)

    def test_majority(self):
        block = PimLogicBlock(7)
        assert block.evaluate(BulkOp.MAJ, 4, 7) == 1
        assert block.evaluate(BulkOp.MAJ, 3, 7) == 0

    def test_inconsistent_level_rejected(self):
        block = PimLogicBlock(7)
        # AND with 2 operands pads 5 ones; level below 5 is impossible.
        with pytest.raises(ValueError):
            block.evaluate(BulkOp.AND, 2, 2)

    def test_truth_table_levels(self):
        block = PimLogicBlock(7)
        table = block.truth_table(BulkOp.AND, 3)
        # 4 padded ones; data ones 0..3 -> levels 4..7.
        assert set(table) == {4, 5, 6, 7}
        assert table[7] == 1 and table[6] == 0

    def test_operand_count_validation(self):
        with pytest.raises(ValueError):
            PimLogicBlock(7).evaluate(BulkOp.OR, 0, 8)
