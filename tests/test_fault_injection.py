"""Failure-injection tests: behaviour of the PIM core under faults."""

import pytest

from repro.arch.dbc import DomainBlockCluster
from repro.core.addition import MultiOperandAdder
from repro.core.bulk_bitwise import BulkBitwiseUnit
from repro.core.nmr import ModularRedundancy
from repro.core.pim_logic import BulkOp
from repro.device.faults import FaultConfig, FaultInjector
from repro.device.nanowire import AccessPort, Nanowire
from repro.device.parameters import DeviceParameters


def faulty_dbc(tr_rate=0.0, shift_rate=0.0, seed=0, tracks=16, trd=7):
    return DomainBlockCluster(
        tracks=tracks,
        domains=32,
        params=DeviceParameters(trd=trd),
        injector=FaultInjector(
            FaultConfig(
                tr_fault_rate=tr_rate, shift_fault_rate=shift_rate, seed=seed
            )
        ),
    )


class TestTrFaultEffects:
    def test_heavy_faults_corrupt_additions(self):
        errors = 0
        trials = 100
        for seed in range(trials):
            dbc = faulty_dbc(tr_rate=0.2, seed=seed)
            adder = MultiOperandAdder(dbc)
            if adder.add_words([100, 50, 25], 8).value != 175:
                errors += 1
        # With a 20% per-TR fault rate most additions should break.
        assert errors > trials // 2

    def test_fault_free_never_errs(self):
        for seed in range(10):
            dbc = faulty_dbc(tr_rate=0.0, seed=seed)
            adder = MultiOperandAdder(dbc)
            assert adder.add_words([100, 50, 25], 8).value == 175

    def test_faults_shift_bulk_op_levels(self):
        dbc = faulty_dbc(tr_rate=1.0, seed=3, tracks=4)
        unit = BulkBitwiseUnit(dbc)
        unit.stage_operands(BulkOp.OR, [[0, 0, 0, 0], [0, 0, 0, 0]])
        # Every TR misreads by one level, so the all-zero OR reads as 1.
        assert unit.execute(BulkOp.OR, 2).bits == [1, 1, 1, 1]

    def test_injector_counts_faults(self):
        dbc = faulty_dbc(tr_rate=1.0, seed=2, tracks=4)
        dbc.transverse_read_all()
        assert dbc.injector.tr_faults_injected == 4


class TestNmrUnderInjectedFaults:
    def test_tmr_restores_correctness(self):
        """Replicated add + vote beats a single faulty add."""
        from repro.utils.bitops import bits_from_int, bits_to_int

        injector = FaultInjector(FaultConfig(tr_fault_rate=0.01, seed=21))
        clean = sum([100, 50, 25])
        wins = 0
        trials = 60
        for t in range(trials):
            replicas = []
            for _ in range(3):
                dbc = DomainBlockCluster(
                    tracks=16,
                    domains=32,
                    params=DeviceParameters(trd=7),
                    injector=injector,
                )
                adder = MultiOperandAdder(dbc)
                value = adder.add_words([100, 50, 25], 8).value
                replicas.append(bits_from_int(value & 0xFFFF, 16))
            voter = ModularRedundancy(
                DomainBlockCluster(
                    tracks=16, domains=32, params=DeviceParameters(trd=7)
                )
            )
            voted = bits_to_int(voter.vote(replicas).bits)
            if voted == clean:
                wins += 1
        assert wins == trials  # p=1% single faults never collude 2-of-3 here


class TestShiftFaults:
    def test_overshoot_misaligns_data(self):
        wire = Nanowire(
            32,
            [AccessPort(14), AccessPort(20)],
            injector=FaultInjector(
                FaultConfig(shift_fault_rate=1.0, seed=4)
            ),
        )
        wire.load([0] * 32)
        wire.poke_row(15, 1)
        wire.shift(1)  # faults into 0 or 2 positions
        assert wire.offset in (0, 2)

    def test_shift_fault_rate_zero_is_exact(self):
        wire = Nanowire(32, [AccessPort(14), AccessPort(20)])
        wire.shift(1, 5)
        assert wire.offset == 5


class TestFaultRateExtrapolation:
    """Monte Carlo at inflated rates extrapolates to the Table V scale."""

    @pytest.mark.parametrize("rate", [0.005, 0.02])
    def test_add_error_scales_linearly(self, rate):
        trials = 400
        injector = FaultInjector(FaultConfig(tr_fault_rate=rate, seed=7))
        errors = 0
        for t in range(trials):
            dbc = DomainBlockCluster(
                tracks=16,
                domains=32,
                params=DeviceParameters(trd=7),
                injector=injector,
            )
            adder = MultiOperandAdder(dbc)
            words = [(t * 13 + i) % 256 for i in range(5)]
            if adder.add_words(words, 8, result_bits=8).value != sum(words) % 256:
                errors += 1
        observed = errors / trials
        predicted = 1 - (1 - rate) ** 8  # 8 TRs per 8-bit add
        assert observed == pytest.approx(predicted, rel=0.6, abs=0.02)
