"""Unit tests for the cpim instruction encoding."""

import pytest

from repro.core.isa import (
    Address,
    BLOCK_SIZES,
    CpimInstruction,
    CpimOp,
    decode,
    encode,
)


def make_instruction(**kwargs):
    defaults = dict(
        op=CpimOp.ADD,
        blocksize=32,
        src=Address(bank=3, subarray=17, tile=2, dbc=0, row=14),
        dest=Address(bank=3, subarray=17, tile=2, dbc=1, row=0),
        operands=5,
    )
    defaults.update(kwargs)
    return CpimInstruction(**defaults)


class TestAddress:
    def test_pack_unpack_roundtrip(self):
        addr = Address(bank=31, subarray=63, tile=15, dbc=15, row=31)
        assert Address.unpack(addr.pack()) == addr

    def test_field_bounds(self):
        with pytest.raises(ValueError):
            Address(bank=32, subarray=0, tile=0, dbc=0, row=0)
        with pytest.raises(ValueError):
            Address(bank=0, subarray=0, tile=0, dbc=0, row=32)

    def test_bit_width_fits_instruction(self):
        assert 2 * Address.bit_width() + 10 <= 64


class TestInstruction:
    def test_encode_decode_roundtrip(self):
        for op in CpimOp:
            for blocksize in BLOCK_SIZES:
                instr = make_instruction(op=op, blocksize=blocksize)
                assert decode(encode(instr)) == instr

    def test_encoding_fits_64_bits(self):
        instr = make_instruction(
            op=CpimOp.COPY,
            blocksize=512,
            operands=7,
            src=Address(31, 63, 15, 15, 31),
            dest=Address(31, 63, 15, 15, 31),
        )
        assert encode(instr) < (1 << 64)

    def test_blocksize_validation(self):
        with pytest.raises(ValueError):
            make_instruction(blocksize=48)

    def test_operand_validation(self):
        with pytest.raises(ValueError):
            make_instruction(operands=0)
        with pytest.raises(ValueError):
            make_instruction(operands=8)

    def test_paper_blocksizes(self):
        # Section III-E: blocksize in {8,...,512}.
        assert BLOCK_SIZES == (8, 16, 32, 64, 128, 256, 512)
