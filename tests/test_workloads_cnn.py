"""Unit tests for the CNN layer models and PIM mapping."""

import pytest

from repro.workloads.cnn.layers import ConvLayer, FCLayer, PoolLayer
from repro.workloads.cnn.mapping import (
    CnnMapper,
    Precision,
    Scheme,
    coruscant_per_mac_cycles,
)
from repro.workloads.cnn.networks import ALEXNET, LENET5


class TestLayers:
    def test_conv_output_size(self):
        conv = ConvLayer(in_channels=3, out_channels=96, kernel=11,
                         in_size=227, stride=4)
        assert conv.out_size == 55

    def test_conv_padding(self):
        conv = ConvLayer(in_channels=96, out_channels=256, kernel=5,
                         in_size=27, padding=2)
        assert conv.out_size == 27

    def test_conv_macs(self):
        conv = ConvLayer(in_channels=1, out_channels=6, kernel=5, in_size=32)
        assert conv.macs == 6 * 28 * 28 * 25

    def test_eq2_reduction_adds(self):
        # Eq. 2: N_a = O_s * ((K^2 - 1) * I_c + (I_c - 1)).
        conv = ConvLayer(in_channels=6, out_channels=16, kernel=5, in_size=14)
        expected = conv.outputs * ((25 - 1) * 6 + 5)
        assert conv.reduction_adds == expected

    def test_pool_geometry(self):
        pool = PoolLayer(channels=96, window=3, in_size=55, stride=2)
        assert pool.out_size == 27
        assert pool.macs == 0

    def test_fc_counts(self):
        fc = FCLayer(in_features=120, out_features=84)
        assert fc.macs == 120 * 84
        assert fc.outputs == 84

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvLayer(in_channels=0, out_channels=1, kernel=3, in_size=8)
        with pytest.raises(ValueError):
            FCLayer(in_features=0, out_features=1)


class TestNetworks:
    def test_lenet_mac_count(self):
        # Classic LeNet-5 is roughly 0.4M MACs.
        assert 350_000 <= LENET5.total_macs <= 500_000

    def test_alexnet_mac_count(self):
        # AlexNet is roughly 1.1G MACs (conv + FC).
        assert 1.0e9 <= ALEXNET.total_macs <= 1.3e9

    def test_layer_partitions(self):
        assert len(LENET5.conv_layers) == 3
        assert len(LENET5.fc_layers) == 2
        assert len(ALEXNET.conv_layers) == 5
        assert len(ALEXNET.fc_layers) == 3


class TestMapping:
    def test_per_mac_cycles_ordering(self):
        # Larger TRD retires reduction rows faster.
        assert (
            coruscant_per_mac_cycles(7)
            < coruscant_per_mac_cycles(5)
            < coruscant_per_mac_cycles(3)
        )

    def test_table4_anchor_alexnet(self):
        fps = CnnMapper(Scheme.CORUSCANT, trd=7).fps(ALEXNET)
        assert fps == pytest.approx(90.5, rel=0.05)

    def test_table4_anchor_lenet(self):
        fps = CnnMapper(Scheme.CORUSCANT, trd=7).fps(LENET5)
        assert fps == pytest.approx(163, rel=0.05)

    def test_coruscant_beats_spim(self):
        # Table IV: 2.2-2.8x over SPIM at full precision.
        for net in (ALEXNET, LENET5):
            spim = CnnMapper(Scheme.SPIM).fps(net)
            for trd, lo, hi in ((3, 1.8, 2.8), (7, 2.4, 3.4)):
                cor = CnnMapper(Scheme.CORUSCANT, trd=trd).fps(net)
                assert lo <= cor / spim <= hi

    def test_ternary_coruscant_beats_elp2im(self):
        # Table IV: 3.7-5.1x over ELP2IM DrAcc on AlexNet.
        elp = CnnMapper(Scheme.ELP2IM, Precision.TWN).fps(ALEXNET)
        c3 = CnnMapper(Scheme.CORUSCANT, Precision.TWN, trd=3).fps(ALEXNET)
        c7 = CnnMapper(Scheme.CORUSCANT, Precision.TWN, trd=7).fps(ALEXNET)
        assert 3.0 <= c3 / elp <= 5.0
        assert 4.0 <= c7 / elp <= 6.5

    def test_trd_sensitivity_direction(self):
        for precision in (Precision.FULL, Precision.TWN):
            fps = [
                CnnMapper(Scheme.CORUSCANT, precision, trd=trd).fps(ALEXNET)
                for trd in (3, 5, 7)
            ]
            assert fps == sorted(fps)

    def test_coruscant_order_of_magnitude_over_isaac(self):
        isaac = CnnMapper(Scheme.ISAAC).fps(ALEXNET)
        c7_twn = CnnMapper(Scheme.CORUSCANT, Precision.TWN, trd=7).fps(ALEXNET)
        assert c7_twn / isaac > 10

    def test_elp2im_beats_ambit(self):
        for precision in (Precision.BWN, Precision.TWN):
            elp = CnnMapper(Scheme.ELP2IM, precision).fps(ALEXNET)
            ambit = CnnMapper(Scheme.AMBIT, precision).fps(ALEXNET)
            assert elp > ambit

    def test_nmr_slowdown(self):
        # Table VI: TMR costs about 3.1x at TRD 7.
        base = CnnMapper(Scheme.CORUSCANT, trd=7).fps(ALEXNET)
        tmr = CnnMapper(Scheme.CORUSCANT, trd=7, nmr=3).fps(ALEXNET)
        assert base / tmr == pytest.approx(3.12, rel=0.05)

    def test_nmr_trd3_costlier_vote(self):
        base = CnnMapper(Scheme.CORUSCANT, trd=3).fps(ALEXNET)
        tmr = CnnMapper(Scheme.CORUSCANT, trd=3, nmr=3).fps(ALEXNET)
        assert base / tmr > 3.5

    def test_validation(self):
        with pytest.raises(ValueError):
            CnnMapper(Scheme.CORUSCANT, trd=4)
        with pytest.raises(ValueError):
            CnnMapper(Scheme.ISAAC, Precision.TWN)
        with pytest.raises(ValueError):
            CnnMapper(Scheme.AMBIT, Precision.FULL).fps(ALEXNET)
