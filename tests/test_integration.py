"""Integration tests across modules: end-to-end application flows."""

import numpy as np
import pytest

from repro import BulkOp, CoruscantSystem, MemoryGeometry
from repro.arch.dbc import DomainBlockCluster
from repro.core.addition import MultiOperandAdder
from repro.core.maxpool import MaxUnit
from repro.core.multiplication import Multiplier
from repro.device.parameters import DeviceParameters
from repro.workloads.bitmap import BitmapDatabase, BitmapQuery


@pytest.fixture()
def system():
    return CoruscantSystem(trd=7, geometry=MemoryGeometry(tracks_per_dbc=64))


class TestBitmapQueryOnHardware:
    """The Fig. 12 query evaluated bit-exactly on the simulated DBC."""

    def test_query_matches_numpy(self, system):
        rng = np.random.default_rng(5)
        width = 64
        db = BitmapDatabase(num_items=width)
        for name in ("male", "week1", "week2"):
            db.add(name, (rng.random(width) < 0.5).astype(np.uint8))
        query = BitmapQuery(["male", "week1", "week2"])
        expected = query.evaluate(db)

        rows = [list(db.bitmap(n)) for n in query.criteria]
        result = system.bulk_op(BulkOp.AND, rows)
        assert sum(result.bits) == expected


class TestDotProductOnHardware:
    """A small fixed-point dot product: multiply + multi-operand add."""

    def test_dot_product(self, system):
        xs = [3, 7, 11, 2, 9]
        ws = [5, 2, 8, 13, 1]
        products = [
            system.multiply(x, w, n_bits=8).value for x, w in zip(xs, ws)
        ]
        total = system.add(products, n_bits=16).value
        assert total == sum(x * w for x, w in zip(xs, ws))


class TestPoolingPipeline:
    """Max pooling over a 2x2 window, as the CNN layer would run it."""

    def test_pooling_window(self, system):
        feature_map = [[12, 99], [45, 7]]
        flat = [v for row in feature_map for v in row]
        assert system.maximum(flat, n_bits=8).value == 99


class TestReluViaMsbPredicate:
    """Section IV-C: ReLU by predicated reset on the sign bit."""

    def test_relu(self, system):
        width = 8
        values = [5, 200, 127, 128]  # two's complement: 200,128 negative
        outputs = []
        for v in values:
            msb = (v >> (width - 1)) & 1
            outputs.append(0 if msb else v)
        assert outputs == [5, 0, 127, 0]


class TestRedundantMultiply:
    """NMR around a multiply, with an injected bad replica."""

    def test_vote_fixes_bad_replica(self, system):
        good = system.multiply(44, 55, n_bits=8).value
        from repro.utils.bitops import bits_from_int

        rows = [bits_from_int(good, 16) for _ in range(3)]
        rows[1][4] ^= 1  # replica 1 is wrong
        voted = system.vote(rows)
        from repro.utils.bitops import bits_to_int

        assert bits_to_int(voted.bits[:16]) == good


class TestBlocksizePackedAdds:
    """Section III-E: independent adds packed into one row."""

    def test_eight_parallel_byte_adds(self):
        dbc = DomainBlockCluster(
            tracks=64, domains=32, params=DeviceParameters(trd=7)
        )
        adder = MultiOperandAdder(dbc)
        lhs = [10, 20, 30, 40, 50, 60, 70, 80]
        rhs = [5, 15, 25, 35, 45, 55, 65, 75]
        for block, (a, b) in enumerate(zip(lhs, rhs)):
            adder.stage_words(
                [a, b], 8, start_track=8 * block, zero_extend_to=8
            )
        result = adder.run(2, result_bits=8, blocks=8, block_stride=8)
        assert result.values == [(a + b) % 256 for a, b in zip(lhs, rhs)]
        assert result.cycles == 16  # one 8-bit walk for all blocks


class TestConvolutionWindow:
    """One 3x3 convolution window: 9 multiplies + CSA reduction."""

    def test_window_sum(self):
        dbc = DomainBlockCluster(
            tracks=64, domains=32, params=DeviceParameters(trd=7)
        )
        mult = Multiplier(dbc)
        kernel = [1, 2, 1, 0, 3, 0, 2, 1, 2]
        window = [9, 8, 7, 6, 5, 4, 3, 2, 1]
        products = [
            mult.multiply(k, x, 4).value for k, x in zip(kernel, window)
        ]
        from repro.core.reduction import CarrySaveReducer
        from repro.utils.bitops import bits_from_int

        reducer = CarrySaveReducer(dbc)
        rows = [bits_from_int(p, 64) for p in products]
        reduced = reducer.reduce_to(rows)
        adder = MultiOperandAdder(dbc)
        adder.stage_rows(reduced.rows)
        total = adder.run(len(reduced.rows), 16).value
        assert total == sum(k * x for k, x in zip(kernel, window))


class TestMaxThenAdd:
    """Chained PIM ops reuse the same DBC safely."""

    def test_sequence(self):
        dbc = DomainBlockCluster(
            tracks=32, domains=32, params=DeviceParameters(trd=7)
        )
        unit = MaxUnit(dbc)
        best = unit.run([17, 3, 99, 42], 8).value
        adder = MultiOperandAdder(dbc)
        total = adder.add_words([best, 1], 8).value
        assert total == 100
