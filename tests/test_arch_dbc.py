"""Unit tests for the domain-block cluster."""

import pytest

from repro.arch.dbc import DomainBlockCluster, pim_port_positions
from repro.device.parameters import DeviceParameters


def make_dbc(tracks=16, trd=7, **kwargs):
    return DomainBlockCluster(
        tracks=tracks,
        domains=32,
        params=DeviceParameters(trd=trd),
        **kwargs,
    )


class TestPortPlacement:
    def test_paper_positions_for_trd7(self):
        # Section III-A: Y = 32, TRD = 7 puts the ports at 14 and 20.
        assert pim_port_positions(32, 7) == (14, 20)

    def test_window_size_equals_trd(self):
        for trd in (3, 5, 7):
            lo, hi = pim_port_positions(32, trd)
            assert hi - lo + 1 == trd

    def test_small_domain_clamping(self):
        lo, hi = pim_port_positions(8, 7)
        assert 0 <= lo and hi <= 7

    def test_rejects_trd_larger_than_domains(self):
        with pytest.raises(ValueError):
            pim_port_positions(4, 7)


class TestWindow:
    def test_window_size(self):
        assert make_dbc(trd=7).window_size == 7
        assert make_dbc(trd=3).window_size == 3

    def test_window_slots_map_to_rows(self):
        dbc = make_dbc()
        assert dbc.window_row_at(0) == 14
        assert dbc.window_row_at(6) == 20

    def test_window_slots_track_shifting(self):
        dbc = make_dbc()
        dbc.shift(1)
        assert dbc.window_row_at(0) == 13

    def test_poke_peek_window_slot(self):
        dbc = make_dbc(tracks=8)
        row = [1, 0, 1, 0, 1, 0, 1, 0]
        dbc.poke_window_slot(3, row)
        assert dbc.peek_window_slot(3) == row

    def test_non_pim_dbc_has_no_window(self):
        dbc = DomainBlockCluster(tracks=4, domains=32, pim_enabled=False)
        with pytest.raises(ValueError):
            _ = dbc.window


class TestLockstepOps:
    def test_row_write_read(self):
        dbc = make_dbc(tracks=8)
        bits = [1, 1, 0, 0, 1, 0, 1, 0]
        dbc.align(10, 0)
        dbc.write_row(bits, 0)
        assert dbc.read_row(0) == bits

    def test_row_width_checked(self):
        dbc = make_dbc(tracks=8)
        with pytest.raises(ValueError):
            dbc.write_row([1, 0], 0)

    def test_cycles_counted_once_per_lockstep_op(self):
        dbc = make_dbc(tracks=8)
        before = dbc.stats.cycles
        dbc.read_row(0)
        assert dbc.stats.cycles == before + 1

    def test_energy_scales_with_tracks(self):
        small = make_dbc(tracks=4)
        large = make_dbc(tracks=8)
        small.read_row(0)
        large.read_row(0)
        assert large.stats.energy_pj == pytest.approx(
            2 * small.stats.energy_pj
        )

    def test_shift_lockstep(self):
        dbc = make_dbc(tracks=4)
        dbc.poke_row(20, [1, 0, 1, 0])
        dbc.shift(1, 6)
        # Row 20 now aligned where row 14 was; align back and check.
        dbc.shift(-1, 6)
        assert dbc.peek_row(20) == [1, 0, 1, 0]


class TestTransverseOps:
    def test_tr_all_counts_per_track(self):
        dbc = make_dbc(tracks=4)
        dbc.poke_window_slot(0, [1, 1, 0, 0])
        dbc.poke_window_slot(3, [1, 0, 0, 0])
        assert dbc.transverse_read_all() == [2, 1, 0, 0]

    def test_tr_single_track(self):
        dbc = make_dbc(tracks=4)
        dbc.poke_window_slot(2, [0, 1, 0, 0])
        assert dbc.transverse_read_track(1) == 1
        assert dbc.transverse_read_track(0) == 0

    def test_tr_tracks_shares_cycle(self):
        dbc = make_dbc(tracks=8)
        before = dbc.stats.cycles
        dbc.transverse_read_tracks([0, 3, 5])
        assert dbc.stats.cycles == before + 1

    def test_tw_row(self):
        dbc = make_dbc(tracks=4)
        dbc.poke_window_slot(6, [1, 1, 1, 1])
        ejected = dbc.transverse_write_row([0, 1, 0, 1])
        assert ejected == [1, 1, 1, 1]
        assert dbc.peek_window_slot(0) == [0, 1, 0, 1]

    def test_overhead_override(self):
        dbc = make_dbc(tracks=2, overhead=(5, 100))
        assert dbc.wires[0].overhead_right == 100


class TestLongNanowires:
    """The architecture scales to 32 <= Y <= 512 (Section II-B)."""

    def test_y512_dbc_operates(self):
        from repro.core.addition import MultiOperandAdder

        dbc = DomainBlockCluster(
            tracks=16, domains=512, params=DeviceParameters(trd=7)
        )
        assert dbc.window_size == 7
        adder = MultiOperandAdder(dbc)
        assert adder.add_words([100, 200], 8).value == 300

    def test_y512_port_positions_centered(self):
        lo, hi = pim_port_positions(512, 7)
        assert hi - lo + 1 == 7
        assert 200 < lo < 312

    def test_y128_shifting_and_overhead(self):
        dbc = DomainBlockCluster(
            tracks=4, domains=128, params=DeviceParameters(trd=7)
        )
        dbc.poke_row(64, [1, 0, 1, 0])
        dbc.align(64, 0)
        assert dbc.read_row(0) == [1, 0, 1, 0]
