"""Unit tests for tile/subarray/bank/memory and the row buffer."""

import pytest

from repro.arch.bank import Bank
from repro.arch.geometry import MemoryGeometry
from repro.arch.memory import MainMemory
from repro.arch.rowbuffer import RowBuffer
from repro.arch.subarray import Subarray
from repro.arch.tile import Tile


class TestGeometry:
    def test_table2_capacity(self):
        # Table II: 1 GB part.
        g = MemoryGeometry()
        assert g.capacity_bytes == 1 << 30

    def test_pim_parallelism(self):
        g = MemoryGeometry()
        assert g.banks * g.subarrays_per_bank == 2048

    def test_row_bits(self):
        assert MemoryGeometry().row_bits == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryGeometry(banks=0)
        with pytest.raises(ValueError):
            MemoryGeometry(pim_dbcs_per_tile=99)


class TestLazyMaterialisation:
    def test_tile_lazy(self):
        tile = Tile(tracks=8, domains=32)
        assert tile.materialized_dbcs == 0
        tile.dbc(3)
        assert tile.materialized_dbcs == 1

    def test_subarray_lazy(self):
        sub = Subarray(tracks=8)
        assert sub.materialized_tiles == 0
        sub.pim_tile()
        assert sub.materialized_tiles == 1

    def test_bank_lazy(self):
        bank = Bank(tracks=8)
        bank.subarray(5)
        assert bank.materialized_subarrays == 1

    def test_memory_lazy(self):
        memory = MainMemory(geometry=MemoryGeometry(tracks_per_dbc=8))
        memory.pim_dbc(bank=2, subarray=10)
        assert memory.materialized_banks == 1


class TestPimPlacement:
    def test_first_dbc_is_pim(self):
        tile = Tile(tracks=8, pim_dbcs=1)
        assert tile.dbc(0).pim_enabled
        assert not tile.dbc(1).pim_enabled

    def test_tile_without_pim(self):
        tile = Tile(tracks=8, pim_dbcs=0)
        with pytest.raises(ValueError):
            tile.pim_dbc()

    def test_pim_tile_per_subarray(self):
        sub = Subarray(tracks=8, pim_tiles=1)
        assert sub.pim_tile().num_pim_dbcs == 1
        assert sub.tile(1).num_pim_dbcs == 0

    def test_index_bounds(self):
        tile = Tile(tracks=8)
        with pytest.raises(IndexError):
            tile.dbc(16)
        memory = MainMemory()
        with pytest.raises(IndexError):
            memory.bank(32)

    def test_total_pim_units(self):
        assert MainMemory().total_pim_units == 2048


class TestCostRollup:
    def test_cycles_roll_up(self):
        memory = MainMemory(geometry=MemoryGeometry(tracks_per_dbc=8))
        dbc = memory.pim_dbc()
        dbc.shift(1, 4)
        assert memory.total_cycles() == 4
        assert memory.total_energy_pj() > 0


class TestRowBuffer:
    def test_latch_and_read(self):
        rb = RowBuffer(4)
        rb.latch([1, 0, 1, 1], row=7)
        assert rb.data() == [1, 0, 1, 1]
        assert rb.open_row == 7

    def test_reset(self):
        rb = RowBuffer(4)
        rb.latch([1, 1, 1, 1])
        rb.reset()
        assert rb.data() == [0, 0, 0, 0]

    def test_close(self):
        rb = RowBuffer(4)
        rb.latch([1, 0, 0, 0], row=1)
        rb.close()
        assert not rb.is_open
        with pytest.raises(RuntimeError):
            rb.data()

    def test_hit_miss_tracking(self):
        rb = RowBuffer(4)
        rb.latch([0, 0, 0, 0], row=3)
        assert rb.access(3)
        assert not rb.access(4)
        assert rb.hits == 1 and rb.misses == 1

    def test_width_checked(self):
        rb = RowBuffer(4)
        with pytest.raises(ValueError):
            rb.latch([1, 0])
        with pytest.raises(ValueError):
            RowBuffer(0)
