"""Metrics edge cases: quantile boundaries and snapshot thread-safety."""

import threading

import pytest

from repro.telemetry.metrics import Histogram, MetricsRegistry


class TestQuantileEdges:
    def test_empty_histogram_returns_none(self):
        hist = Histogram("t", (1, 2, 3))
        assert hist.quantile(0.5) is None
        assert hist.quantile(0.0) is None
        assert hist.quantile(1.0) is None

    def test_single_sample_every_quantile_is_it(self):
        hist = Histogram("t", (1, 2, 3))
        hist.observe(1.5)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(1.5)

    def test_all_samples_in_overflow_bucket(self):
        hist = Histogram("t", (1, 2))
        for value in (10, 20, 30):
            hist.observe(value)
        # Overflow bucket spans [min, max] = [10, 30]; estimates stay
        # inside the observed range instead of escaping past the edges.
        assert hist.quantile(0.0) == pytest.approx(10.0)
        assert hist.quantile(1.0) == pytest.approx(30.0)
        assert 10.0 <= hist.quantile(0.5) <= 30.0

    def test_identical_samples_collapse_the_bucket(self):
        hist = Histogram("t", (1, 5))
        for _ in range(4):
            hist.observe(3.0)
        # min == max inside one bucket: no room to interpolate.
        assert hist.quantile(0.5) == pytest.approx(3.0)
        assert hist.quantile(0.99) == pytest.approx(3.0)

    def test_quantile_out_of_range_raises(self):
        hist = Histogram("t", (1,))
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.1)

    def test_estimates_never_leave_observed_range(self):
        hist = Histogram("t", (1, 10, 100))
        for value in (4, 5, 6, 7):
            hist.observe(value)
        for q in (0.0, 0.1, 0.5, 0.9, 1.0):
            assert 4.0 <= hist.quantile(q) <= 7.0


class TestConcurrentSnapshots:
    def test_counter_incs_race_as_dict(self):
        """as_dict() snapshots stay readable while counters increment.

        CPython counter bumps interleave with snapshot iteration; the
        registry promises non-destructive reads and monotone values,
        not a global lock — so every snapshot must parse and every
        successive read of one counter must be non-decreasing.
        """
        registry = MetricsRegistry()
        names = [f"race.c{i}" for i in range(4)]
        for name in names:
            registry.counter(name)
        per_thread = 2000
        errors = []

        def incrementer(name):
            counter = registry.counter(name)
            try:
                for _ in range(per_thread):
                    counter.inc()
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        streams = [[], []]

        def snapshotter(stream):
            try:
                for _ in range(200):
                    stream.append(registry.as_dict()["counters"])
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [
            threading.Thread(target=incrementer, args=(name,))
            for name in names
        ] + [
            threading.Thread(target=snapshotter, args=(stream,))
            for stream in streams
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        # Final totals are exact: each counter has one writer thread.
        final = registry.as_dict()["counters"]
        for name in names:
            assert final[name] == per_thread
        # Within one snapshotter's stream, every counter reads as an
        # in-range, monotonically non-decreasing value.
        for stream in streams:
            for name in names:
                previous = 0
                for snapshot in stream:
                    value = snapshot.get(name, 0)
                    assert 0 <= value <= per_thread
                    assert value >= previous
                    previous = value

    def test_histogram_observe_races_as_dict(self):
        registry = MetricsRegistry()
        hist = registry.histogram("race.h", (0.5, 1.0))
        errors = []

        def observer():
            try:
                for i in range(2000):
                    hist.observe((i % 3) * 0.4)
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        def snapshotter():
            try:
                for _ in range(100):
                    snapshot = registry.as_dict()["histograms"]["race.h"]
                    assert snapshot["count"] >= 0
                    assert len(snapshot["counts"]) == 3
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [
            threading.Thread(target=observer),
            threading.Thread(target=snapshotter),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert hist.count == 2000
