"""Unit tests for the chaos timeline compiler and injector.

The determinism contract is the load-bearing part: a timeline is a
pure function of (seed, specs, duration_ops), per-kind substreams are
independent, and the injector's arm/fire/sweep bookkeeping maps every
scheduled event to exactly one of ``fired`` / ``unfired``.
"""

import pytest

from repro.chaos import hooks
from repro.chaos.faults import (
    CAMPAIGN_KINDS,
    ChaosInjector,
    FAULT_KINDS,
    FaultEvent,
    FaultSpec,
    compile_timeline,
    parse_fault_specs,
)
from repro.service.protocol import KernelFault, ServiceReject


class TestFaultSpecs:
    def test_parse_round_trip(self):
        specs = parse_fault_specs(
            "worker-crash:2, torn-wal:3,kernel-latency:4@0.002"
        )
        assert [
            (s.kind, s.count, s.param) for s in specs
        ] == [
            ("worker-crash", 2, None),
            ("torn-wal", 3, None),
            ("kernel-latency", 4, 0.002),
        ]
        assert specs[2].effective_param == 0.002
        assert specs[1].effective_param == FAULT_KINDS["torn-wal"][1]

    def test_parse_rejects_garbage(self):
        for bad in ("", "worker-crash", "worker-crash:x",
                    "worker-crash:1@q", "no-such-kind:1",
                    "worker-crash:0"):
            with pytest.raises(ValueError):
                parse_fault_specs(bad)

    def test_every_kind_has_a_site(self):
        for kind, (site, _param) in FAULT_KINDS.items():
            if kind in CAMPAIGN_KINDS:
                assert site == "campaign"
            else:
                assert site in hooks.SITES


class TestTimeline:
    SPECS = [
        FaultSpec("worker-crash", 3),
        FaultSpec("torn-wal", 2),
        FaultSpec("kernel-fault", 4),
    ]

    def test_bit_identical_across_compiles(self):
        a = compile_timeline(42, self.SPECS, 50)
        b = compile_timeline(42, self.SPECS, 50)
        assert a == b

    def test_seed_changes_timeline(self):
        a = compile_timeline(42, self.SPECS, 50)
        b = compile_timeline(43, self.SPECS, 50)
        assert a != b

    def test_kinds_draw_from_independent_streams(self):
        # Removing one kind must not move another kind's placements.
        full = compile_timeline(7, self.SPECS, 50)
        partial = compile_timeline(7, self.SPECS[:2], 50)
        keep = {e for e in full if e.kind != "kernel-fault"}
        assert keep == set(partial)

    def test_count_clamped_to_duration(self):
        events = compile_timeline(1, [FaultSpec("worker-crash", 99)], 5)
        assert len(events) == 5
        assert sorted(e.op for e in events) == [0, 1, 2, 3, 4]

    def test_sorted_by_op_then_kind(self):
        events = compile_timeline(3, self.SPECS, 30)
        assert events == sorted(events, key=lambda e: (e.op, e.kind))


class TestInjector:
    def test_arm_fire_consume(self):
        injector = ChaosInjector(
            [FaultEvent(op=0, kind="worker-crash", param=0.0)]
        )
        injector.advance(0)
        assert injector.fire(hooks.SITE_DISPATCH_WORKER) == {
            "action": "crash"
        }
        # Consumed: a second fire at the same site is a no-op.
        assert injector.fire(hooks.SITE_DISPATCH_WORKER) is None
        assert [f["kind"] for f in injector.fired] == ["worker-crash"]
        assert injector.fired[0]["fired_at_op"] == 0

    def test_wrong_site_does_not_fire(self):
        injector = ChaosInjector(
            [FaultEvent(op=0, kind="worker-crash", param=0.0)]
        )
        injector.advance(0)
        assert injector.fire(hooks.SITE_KERNEL_EXECUTE) is None

    def test_unreached_events_swept_to_unfired(self):
        injector = ChaosInjector(
            [FaultEvent(op=0, kind="kernel-fault", param=0.0)]
        )
        injector.advance(0)
        injector.advance(1)  # op 0 never reached kernels.execute
        assert injector.fired == []
        assert [u["kind"] for u in injector.unfired] == ["kernel-fault"]

    def test_campaign_events_returned_not_armed(self):
        injector = ChaosInjector(
            [FaultEvent(op=2, kind="breaker-storm", param=0.0)]
        )
        assert injector.advance(0) == []
        storms = injector.advance(2)
        assert [e.kind for e in storms] == ["breaker-storm"]
        assert [f["kind"] for f in injector.fired] == ["breaker-storm"]

    def test_torn_wal_waits_for_the_ack_append(self):
        injector = ChaosInjector(
            [FaultEvent(op=0, kind="torn-wal", param=0.5)]
        )
        injector.advance(0)
        # The intent append passes clean; the event stays armed.
        assert (
            injector.fire(
                hooks.SITE_JOURNAL_APPEND, record_type="intent"
            )
            is None
        )
        assert injector.fire(
            hooks.SITE_JOURNAL_APPEND, record_type="ack"
        ) == {"action": "tear", "fraction": 0.5}

    def test_exception_kinds_raise(self):
        injector = ChaosInjector(
            [
                FaultEvent(op=0, kind="kernel-fault", param=0.0),
                FaultEvent(op=0, kind="queue-saturation", param=0.25),
                FaultEvent(op=0, kind="wal-io-error", param=0.0),
            ]
        )
        injector.advance(0)
        with pytest.raises(ServiceReject) as reject:
            injector.fire(hooks.SITE_DISPATCH_SUBMIT)
        assert reject.value.http_status == 429
        with pytest.raises(KernelFault):
            injector.fire(hooks.SITE_KERNEL_EXECUTE)
        with pytest.raises(OSError):
            injector.fire(hooks.SITE_JOURNAL_APPEND)


class TestHooks:
    def test_fire_is_noop_when_inactive(self):
        hooks.deactivate()
        assert hooks.active() is None
        assert hooks.fire(hooks.SITE_DISPATCH_WORKER) is None

    def test_activate_routes_to_injector(self):
        injector = ChaosInjector(
            [FaultEvent(op=0, kind="clock-skew", param=0.5)]
        )
        injector.advance(0)
        hooks.activate(injector)
        try:
            assert hooks.fire(hooks.SITE_GATEWAY_BUDGET) == 0.5
        finally:
            hooks.deactivate()
        assert hooks.fire(hooks.SITE_GATEWAY_BUDGET) is None
