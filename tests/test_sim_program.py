"""Unit tests for cpim program building and scheduling."""

import pytest

from repro.arch.geometry import MemoryGeometry
from repro.arch.memory import MainMemory
from repro.core.isa import CpimOp
from repro.sim.layout import PimAllocator
from repro.sim.program import (
    EXECUTE_CYCLES,
    HighThroughputScheduler,
    ProgramBuilder,
)


def make_builder():
    allocator = PimAllocator(
        MainMemory(geometry=MemoryGeometry(tracks_per_dbc=16))
    )
    return ProgramBuilder(allocator)


class TestProgramBuilder:
    def test_emit_round_robin(self):
        builder = make_builder()
        a = builder.emit(CpimOp.ADD)
        b = builder.emit(CpimOp.ADD)
        assert (a.src.bank, a.src.subarray) != (b.src.bank, b.src.subarray)

    def test_bulk_op_validation(self):
        builder = make_builder()
        builder.bulk_op(CpimOp.AND, operands=3)
        with pytest.raises(ValueError):
            builder.bulk_op(CpimOp.ADD, operands=3)

    def test_add_reduction_schedule_trd7(self):
        builder = make_builder()
        # 16 values: rounds of 7->3 until <= 5, then one ADD.
        emitted = builder.add_reduction(16, trd=7)
        ops = [i.op for i in builder.instructions]
        assert ops.count(CpimOp.ADD) == 1
        assert ops.count(CpimOp.REDUCE) == emitted - 1

    def test_add_reduction_small_input(self):
        builder = make_builder()
        builder.add_reduction(3, trd=7)
        ops = [i.op for i in builder.instructions]
        assert ops == [CpimOp.ADD]

    def test_add_reduction_single_value(self):
        builder = make_builder()
        assert builder.add_reduction(1) == 0

    def test_dot_product_lowering(self):
        builder = make_builder()
        builder.dot_product(9, trd=7)
        ops = [i.op for i in builder.instructions]
        assert ops.count(CpimOp.MULT) == 9
        assert CpimOp.ADD in ops

    def test_trd3_reduction_uses_more_rounds(self):
        b7 = make_builder()
        b3 = make_builder()
        r7 = b7.add_reduction(16, trd=7)
        r3 = b3.add_reduction(16, trd=3)
        assert r3 > r7

    def test_blocksize_validation(self):
        builder = make_builder()
        with pytest.raises(ValueError):
            builder.emit(CpimOp.ADD, blocksize=100)


class TestScheduler:
    def test_parallel_faster_than_serial(self):
        builder = make_builder()
        for _ in range(32):
            builder.emit(CpimOp.MULT)
        serial = HighThroughputScheduler(units=1).run(builder.instructions)
        parallel = HighThroughputScheduler(units=32).run(builder.instructions)
        assert parallel.total_cycles < serial.total_cycles

    def test_issue_bandwidth_bounds_throughput(self):
        """With abundant units, dispatch is the bottleneck (Fig. 10)."""
        builder = make_builder()
        n = 64
        for _ in range(n):
            builder.emit(CpimOp.ADD)
        result = HighThroughputScheduler(units=2048).run(builder.instructions)
        # Total ~= issue time of all instructions + one execution.
        min_expected = n * 5
        assert result.total_cycles >= min_expected
        assert result.total_cycles <= min_expected + EXECUTE_CYCLES[CpimOp.ADD] + 5

    def test_queueing_on_busy_unit(self):
        builder = make_builder()
        for _ in range(4):
            builder.emit(CpimOp.MAX)  # long-running
        result = HighThroughputScheduler(units=1).run(builder.instructions)
        # Each op waits for the previous one on the single unit.
        assert result.total_cycles >= 4 * EXECUTE_CYCLES[CpimOp.MAX]

    def test_empty_program(self):
        result = HighThroughputScheduler(units=4).run([])
        assert result.total_cycles == 0
        assert result.utilization() == 0.0

    def test_utilization_bounded(self):
        builder = make_builder()
        for _ in range(16):
            builder.emit(CpimOp.REDUCE)
        result = HighThroughputScheduler(units=4).run(builder.instructions)
        assert 0.0 < result.utilization() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HighThroughputScheduler(units=0)
