"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestExperiments:
    @pytest.mark.parametrize(
        "command", ["table1", "fig11", "fig12"]
    )
    def test_experiment_commands_run(self, command, capsys):
        assert main([command]) == 0
        out = capsys.readouterr().out
        assert "==" in out

    def test_fig10(self, capsys):
        assert main(["fig10"]) == 0
        assert "speedup" in capsys.readouterr().out


class TestOperations:
    def test_add(self, capsys):
        assert main(["add", "13", "200", "7"]) == 0
        assert "= 220" in capsys.readouterr().out

    def test_mult(self, capsys):
        assert main(["mult", "173", "219"]) == 0
        assert str(173 * 219) in capsys.readouterr().out

    def test_mult_trd3(self, capsys):
        assert main(["mult", "12", "10", "--trd", "3"]) == 0
        assert "TRD=3" in capsys.readouterr().out

    def test_add_needs_operands(self):
        with pytest.raises(SystemExit):
            main(["add", "5"])

    def test_mult_needs_two(self):
        with pytest.raises(SystemExit):
            main(["mult", "5", "6", "7"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestCampaignCommand:
    def test_campaign_reports_both_runs(self, capsys):
        assert main(["campaign", "--ops", "50"]) == 0
        out = capsys.readouterr().out
        assert "recovery_on" in out
        assert "recovery_off" in out
        assert "correction_rate" in out

    def test_bad_campaign_args_rejected_cleanly(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--ops", "0"])
        with pytest.raises(SystemExit):
            main(["campaign", "--fault-rate", "-0.5"])

    def test_no_resilience_runs_bare_only(self, capsys):
        assert main(
            ["campaign", "--ops", "20", "--no-resilience",
             "--fault-rate", "0.01"]
        ) == 0
        out = capsys.readouterr().out
        assert "recovery_off" in out
        assert "recovery_on" not in out

    def test_scrub_and_adaptive_flags_reported(self, capsys):
        assert main(
            ["campaign", "--ops", "40", "--fault-rate", "0.01",
             "--shift-fault-rate", "0.001", "--scrub-interval", "8",
             "--adaptive", "--storm-ops", "20",
             "--calm-fault-rate", "1e-5", "--storage-rows", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "proactive_catches" in out
        assert "escalations" in out
        assert "storage_wrong" in out

    def test_uncorrectable_faults_exit_nonzero(self, capsys):
        # At 45% per-TR faults the vote frequently ends three-way split
        # and even 7-MR escalation cannot assemble a majority.
        assert main(
            ["campaign", "--ops", "4", "--fault-rate", "0.45",
             "--seed", "0"]
        ) == 1
        out = capsys.readouterr().out
        assert "campaign ended with uncorrectable faults" in out

    def test_bare_corruption_does_not_fail_exit_code(self, capsys):
        # Without recovery nothing is *detected*, so the run exits 0:
        # the exit code reports uncorrectable faults, not silent ones.
        assert main(
            ["campaign", "--ops", "4", "--fault-rate", "0.45",
             "--seed", "0", "--no-resilience"]
        ) == 0

    def test_checkpoint_resume_flow(self, tmp_path, capsys):
        path = str(tmp_path / "journal.json")
        base = ["campaign", "--ops", "30", "--fault-rate", "0.01",
                "--checkpoint", path, "--checkpoint-every", "5"]
        assert main(base + ["--stop-after", "10"]) == 0
        first = capsys.readouterr().out
        assert "completed: False" in first
        assert main(base) == 0
        second = capsys.readouterr().out
        assert "resumed_from: 10" in second
        assert "completed: True" in second

    def test_new_flag_validation(self):
        bad = [
            ["campaign", "--adaptive", "--no-resilience"],
            ["campaign", "--scrub-interval", "0"],
            ["campaign", "--checkpoint-every", "0"],
            ["campaign", "--stop-after", "-1"],
            ["campaign", "--storage-rows", "-2"],
            ["campaign", "--calm-fault-rate", "1.5"],
        ]
        for argv in bad:
            with pytest.raises(SystemExit):
                main(argv)


class TestShardedCampaignCommand:
    def test_sharded_campaign_text_output(self, capsys):
        assert main(
            ["campaign", "--ops", "40", "--shards", "2",
             "--fault-rate", "0.01", "--workers", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "Sharded campaign (merged)" in out
        assert "shard 0: ops [0,20)" in out
        assert "shard 1: ops [20,40)" in out

    def test_sharded_campaign_json_schema_and_shards(self, capsys):
        assert main(
            ["campaign", "--ops", "40", "--shards", "2",
             "--fault-rate", "0.01", "--workers", "0", "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "coruscant-campaign/2"
        assert document["config"]["ops"] == 40
        shards = document["shards"]
        assert [s["shard"] for s in shards] == [0, 1]
        for record in shards:
            assert {"start", "stop", "ops", "injected", "escaped",
                    "supervisor_attempts", "wall_seconds"} <= set(record)
        assert document["Sharded campaign (merged)"]["ops"] == 40
        assert document["exit_status"] == 0

    def test_journal_writes_report(self, tmp_path, capsys):
        journal = tmp_path / "j"
        assert main(
            ["campaign", "--ops", "40", "--shards", "2",
             "--fault-rate", "0.01", "--workers", "0",
             "--journal", str(journal)]
        ) == 0
        capsys.readouterr()
        report = json.loads((journal / "report.json").read_text())
        assert report["schema"] == "coruscant-campaign/2"
        assert report["merged"]["ops"] == 40
        assert (journal / "journal.shard-0.json").exists()
        assert (journal / "journal.shard-1.json").exists()

    def test_journal_alone_implies_one_shard(self, tmp_path, capsys):
        journal = tmp_path / "j"
        assert main(
            ["campaign", "--ops", "20", "--fault-rate", "0.01",
             "--workers", "0", "--journal", str(journal)]
        ) == 0
        capsys.readouterr()
        report = json.loads((journal / "report.json").read_text())
        assert report["shards"] == 1

    def test_crash_injection_recovers_and_exits_zero(
        self, tmp_path, capsys
    ):
        journal = tmp_path / "j"
        assert main(
            ["campaign", "--ops", "40", "--shards", "2",
             "--fault-rate", "0.01", "--journal", str(journal),
             "--checkpoint-every", "5",
             "--inject-worker-crash", "1:30:kill"]
        ) == 0
        out = capsys.readouterr().out
        assert "crashed" in out
        assert "incomplete" not in out

    def test_exhausted_retries_exit_distinct_code(self, tmp_path, capsys):
        journal = tmp_path / "j"
        code = main(
            ["campaign", "--ops", "40", "--shards", "2",
             "--fault-rate", "0.01", "--journal", str(journal),
             "--max-shard-retries", "0", "--json",
             "--inject-worker-crash", "1:30:kill-always"]
        )
        assert code == 3
        document = json.loads(capsys.readouterr().out)
        assert document["exit_status"] == 3
        assert document["incomplete_shards"] == [1]
        # The partial report still covers the healthy shard.
        assert document["Sharded campaign (merged)"]["ops"] == 20

    def test_shard_flag_validation(self):
        bad = [
            ["campaign", "--shards", "0"],
            ["campaign", "--workers", "-1"],
            ["campaign", "--shards", "2", "--shard-timeout", "0"],
            ["campaign", "--shards", "2", "--max-shard-retries", "-1"],
            ["campaign", "--shards", "2", "--checkpoint", "x.json"],
            ["campaign", "--shards", "2", "--stop-after", "5"],
            ["campaign", "--inject-worker-crash", "0:1"],
            ["campaign", "--shards", "2", "--workers", "0",
             "--inject-worker-crash", "0:1"],
        ]
        for argv in bad:
            with pytest.raises(SystemExit):
                main(argv)

    def test_bad_crash_spec_rejected(self):
        for spec in ("5", "a:b", "0:1:explode"):
            with pytest.raises(SystemExit):
                main(["campaign", "--shards", "2",
                      "--inject-worker-crash", spec])


class TestMcCommand:
    def test_mc_default_kind_runs(self, capsys):
        assert main(
            ["mc", "--trials", "30", "--fault-rate", "0.005",
             "--workers", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "Monte Carlo (additions, merged)" in out
        assert "error_rate" in out

    def test_mc_sharded_json(self, capsys):
        assert main(
            ["mc", "additions", "--trials", "30", "--shards", "2",
             "--fault-rate", "0.005", "--workers", "0", "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "coruscant-mc-campaign/1"
        merged = document["Monte Carlo (additions, merged)"]
        assert merged["trials"] == 30
        assert [s["shard"] for s in document["shards"]] == [0, 1]
        assert document["exit_status"] == 0

    def test_mc_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            main(["mc", "divisions", "--trials", "10"])

    def test_mc_flag_validation(self):
        bad = [
            ["mc", "--trials", "0"],
            ["mc", "--fault-rate", "0"],
            ["mc", "--shards", "2", "--inject-worker-crash", "0:1"],
        ]
        for argv in bad:
            with pytest.raises(SystemExit):
                main(argv)


class TestTableCommands:
    @pytest.mark.parametrize("command", ["table3", "table4", "table5", "table6"])
    def test_tables_run(self, command, capsys):
        assert main([command]) == 0
        assert "==" in capsys.readouterr().out


class TestJsonOutput:
    @pytest.mark.parametrize(
        "command",
        ["table1", "table3", "table4", "table5", "table6",
         "fig10", "fig11", "fig12"],
    )
    def test_experiments_emit_one_json_document(self, command, capsys):
        assert main([command, "--json"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out)
        assert isinstance(document, dict)
        assert document  # at least one titled section
        assert "==" not in out

    def test_table3_json_sections(self, capsys):
        assert main(["table3", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "Table III: operations" in document
        assert "Table III: headline ratios vs SPIM" in document

    def test_fig10_json_records(self, capsys):
        assert main(["fig10", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        rows = document["Fig. 10: Polybench normalized latency"]
        assert isinstance(rows, list) and rows
        assert {"name", "latency_pim", "speedup_vs_dwm"} <= set(rows[0])

    def test_add_json(self, capsys):
        assert main(["add", "13", "200", "7", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["value"] == 220
        assert document["operands"] == [13, 200, 7]
        assert document["cycles"] > 0

    def test_mult_json(self, capsys):
        assert main(["mult", "173", "219", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["value"] == 173 * 219
        assert {"partial_products", "reduction", "final_add"} <= set(
            document["breakdown"]
        )

    def test_campaign_json(self, capsys):
        assert main(["campaign", "--ops", "20", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "Fault campaign (recovery_on)" in document
        assert "Fault campaign (recovery_off)" in document

    def test_metrics_json_for_experiment_command(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["table3", "--metrics-json", str(path)]) == 0
        metrics = json.loads(path.read_text())
        assert metrics["counters"]["device.cycles"] > 0


class TestReportCommand:
    def test_markdown_scoreboard_covers_paper_tables(self, capsys):
        assert main(["report", "--format", "md"]) == 0
        out = capsys.readouterr().out
        assert "# CORUSCANT reproduction-fidelity scoreboard" in out
        # >= 5 paper tables/figures, each a section with measured /
        # paper / delta columns.
        for section in (
            "Table I", "Table III", "Fig. 10", "Fig. 11", "Fig. 12",
            "Table IV", "Table V",
        ):
            assert section in out, section
        assert "| metric | measured | paper | delta | within tol |" in out
        assert "Hotspots" in out

    def test_default_format_is_markdown(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# CORUSCANT reproduction-fidelity")

    def test_html_format(self, capsys):
        assert main(["report", "--format", "html"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<!DOCTYPE html>")
        assert "</html>" in out

    def test_json_format_round_trips_with_exit_status(self, capsys):
        assert main(["report", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "coruscant-fidelity/1"
        assert document["exit_status"] == 0
        assert len(document["sections"]) >= 5

    def test_json_flag_implies_json_format(self, capsys):
        assert main(["report", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "coruscant-fidelity/1"

    def test_metrics_json_written(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["report", "--metrics-json", str(path)]) == 0
        capsys.readouterr()
        metrics = json.loads(path.read_text())
        assert metrics["counters"]["device.cycles"] > 0


class TestBenchCommand:
    def _history(self, tmp_path):
        return str(tmp_path / "BENCH_history.jsonl")

    def test_bench_appends_history(self, tmp_path, capsys):
        from repro.obs import BenchHistory

        history = self._history(tmp_path)
        args = ["bench", "--repeats", "1", "--history", history]
        assert main(args) == 0
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "bench kernels" in out
        assert "bench verdicts" in out  # second run compared to first
        assert len(BenchHistory(history)) == 2

    def test_bench_no_history_runs_standalone(self, tmp_path, capsys):
        history = self._history(tmp_path)
        assert main(
            ["bench", "--repeats", "1", "--history", history,
             "--no-history"]
        ) == 0
        capsys.readouterr()
        assert not (tmp_path / "BENCH_history.jsonl").exists()

    def test_bench_out_writes_document(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(
            ["bench", "--repeats", "1", "--no-history",
             "--bench-out", str(out)]
        ) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        assert document["schema"] == "coruscant-bench-pim-ops/2"
        assert len(document["kernels"]) == 4

    def test_compare_clean_run_exits_zero(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(
            ["bench", "--repeats", "1", "--no-history",
             "--bench-out", str(baseline)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["bench", "--repeats", "1", "--no-history",
             "--compare", str(baseline)]
        ) == 0
        assert "has_regression: False" in capsys.readouterr().out

    def test_injected_cycle_regression_exits_nonzero(
        self, tmp_path, capsys
    ):
        # The acceptance check: doctor the baseline so the current run's
        # deterministic sim_cycles look like a regression, and the gate
        # must fail the build.
        baseline = tmp_path / "baseline.json"
        assert main(
            ["bench", "--repeats", "1", "--no-history",
             "--bench-out", str(baseline)]
        ) == 0
        capsys.readouterr()
        document = json.loads(baseline.read_text())
        document["kernels"][1]["sim_cycles"] -= 1  # we now look slower
        baseline.write_text(json.dumps(document))
        assert main(
            ["bench", "--repeats", "1", "--no-history",
             "--compare", str(baseline)]
        ) == 1
        out = capsys.readouterr().out
        assert "regressed" in out
        assert "bench regressed vs baseline" in out

    def test_compare_json_reports_exit_status_and_verdicts(
        self, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        assert main(
            ["bench", "--repeats", "1", "--no-history",
             "--bench-out", str(baseline)]
        ) == 0
        capsys.readouterr()
        document = json.loads(baseline.read_text())
        document["kernels"][0]["sim_cycles"] -= 1
        baseline.write_text(json.dumps(document))
        assert main(
            ["bench", "--repeats", "1", "--no-history",
             "--compare", str(baseline), "--json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_status"] == 1
        assert payload["regressed"] is True
        verdicts = payload["bench verdicts"]["verdicts"]
        assert verdicts["regressed"] >= 1

    def test_compare_missing_baseline_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--repeats", "1", "--no-history",
                  "--compare", str(tmp_path / "nope.json")])

    def test_bad_bench_args_rejected(self):
        for argv in (
            ["bench", "--repeats", "0"],
            ["bench", "--wall-tolerance", "-0.5"],
        ):
            with pytest.raises(SystemExit):
                main(argv)


class TestJsonExitStatus:
    def test_experiment_json_carries_exit_status(self, capsys):
        assert main(["table1", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["exit_status"] == 0

    def test_add_json_carries_exit_status(self, capsys):
        assert main(["add", "1", "2", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["exit_status"] == 0

    def test_trace_json_carries_exit_status(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "mult", "--out", str(out), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["exit_status"] == 0

    def test_campaign_json_exit_status_matches_return(self, capsys):
        code = main(
            ["campaign", "--ops", "4", "--fault-rate", "0.45",
             "--seed", "0", "--json"]
        )
        assert code == 1
        assert json.loads(capsys.readouterr().out)["exit_status"] == 1


class TestTraceCommand:
    def test_trace_mult_writes_nested_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "mult", "--out", str(out)]) == 0
        assert "traced kernel 'mult'" in capsys.readouterr().out
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        names = [e["name"] for e in events if e["ph"] == "X"]
        assert "pim.mult" in names
        assert "mult.partial_products" in names
        assert "add.walk" in names
        root = next(e for e in events if e["name"] == "pim.mult")
        child = next(
            e for e in events if e["name"] == "mult.partial_products"
        )
        assert root["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= root["ts"] + root["dur"]
        assert root["args"]["cycles"] > 0

    def test_trace_add_nests_resilience_over_cpim(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "add", "--out", str(out)]) == 0
        names = [
            e["name"]
            for e in json.loads(out.read_text())["traceEvents"]
            if e["ph"] == "X"
        ]
        assert names.index("resilience.op") < names.index("cpim.add")
        assert names.index("cpim.add") < names.index("add.walk")

    def test_trace_default_kernel_is_mult(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "--out", str(out)]) == 0
        assert "'mult'" in capsys.readouterr().out

    def test_trace_mult_metrics_json(self, tmp_path):
        out = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["trace", "mult", "--out", str(out),
             "--metrics-json", str(metrics_path)]
        ) == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["pim.mult.count"] == 1
        assert metrics["counters"]["device.cycles"] > 0

    def test_trace_add_metrics_json_has_cpim_histograms(self, tmp_path):
        # The add kernel dispatches through the controller, which feeds
        # the cpim histograms (the facade kernels do not).
        out = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["trace", "add", "--out", str(out),
             "--metrics-json", str(metrics_path)]
        ) == 0
        metrics = json.loads(metrics_path.read_text())
        assert "cpim.op_cycles" in metrics["histograms"]
        assert "resilience.retry_depth" in metrics["histograms"]

    def test_trace_json_mode(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "max", "--out", str(out), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kernel"] == "max"
        assert document["spans"] >= 1
        assert document["events"] >= document["spans"]

    def test_trace_rejects_unknown_kernel(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "bogus", "--out", str(tmp_path / "t.json")])
