"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestExperiments:
    @pytest.mark.parametrize(
        "command", ["table1", "fig11", "fig12"]
    )
    def test_experiment_commands_run(self, command, capsys):
        assert main([command]) == 0
        out = capsys.readouterr().out
        assert "==" in out

    def test_fig10(self, capsys):
        assert main(["fig10"]) == 0
        assert "speedup" in capsys.readouterr().out


class TestOperations:
    def test_add(self, capsys):
        assert main(["add", "13", "200", "7"]) == 0
        assert "= 220" in capsys.readouterr().out

    def test_mult(self, capsys):
        assert main(["mult", "173", "219"]) == 0
        assert str(173 * 219) in capsys.readouterr().out

    def test_mult_trd3(self, capsys):
        assert main(["mult", "12", "10", "--trd", "3"]) == 0
        assert "TRD=3" in capsys.readouterr().out

    def test_add_needs_operands(self):
        with pytest.raises(SystemExit):
            main(["add", "5"])

    def test_mult_needs_two(self):
        with pytest.raises(SystemExit):
            main(["mult", "5", "6", "7"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestCampaignCommand:
    def test_campaign_reports_both_runs(self, capsys):
        assert main(["campaign", "--ops", "50"]) == 0
        out = capsys.readouterr().out
        assert "recovery_on" in out
        assert "recovery_off" in out
        assert "correction_rate" in out

    def test_bad_campaign_args_rejected_cleanly(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--ops", "0"])
        with pytest.raises(SystemExit):
            main(["campaign", "--fault-rate", "-0.5"])

    def test_no_resilience_runs_bare_only(self, capsys):
        assert main(
            ["campaign", "--ops", "20", "--no-resilience",
             "--fault-rate", "0.01"]
        ) == 0
        out = capsys.readouterr().out
        assert "recovery_off" in out
        assert "recovery_on" not in out


class TestTableCommands:
    @pytest.mark.parametrize("command", ["table3", "table4", "table5", "table6"])
    def test_tables_run(self, command, capsys):
        assert main([command]) == 0
        assert "==" in capsys.readouterr().out
