"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestExperiments:
    @pytest.mark.parametrize(
        "command", ["table1", "fig11", "fig12"]
    )
    def test_experiment_commands_run(self, command, capsys):
        assert main([command]) == 0
        out = capsys.readouterr().out
        assert "==" in out

    def test_fig10(self, capsys):
        assert main(["fig10"]) == 0
        assert "speedup" in capsys.readouterr().out


class TestOperations:
    def test_add(self, capsys):
        assert main(["add", "13", "200", "7"]) == 0
        assert "= 220" in capsys.readouterr().out

    def test_mult(self, capsys):
        assert main(["mult", "173", "219"]) == 0
        assert str(173 * 219) in capsys.readouterr().out

    def test_mult_trd3(self, capsys):
        assert main(["mult", "12", "10", "--trd", "3"]) == 0
        assert "TRD=3" in capsys.readouterr().out

    def test_add_needs_operands(self):
        with pytest.raises(SystemExit):
            main(["add", "5"])

    def test_mult_needs_two(self):
        with pytest.raises(SystemExit):
            main(["mult", "5", "6", "7"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestCampaignCommand:
    def test_campaign_reports_both_runs(self, capsys):
        assert main(["campaign", "--ops", "50"]) == 0
        out = capsys.readouterr().out
        assert "recovery_on" in out
        assert "recovery_off" in out
        assert "correction_rate" in out

    def test_bad_campaign_args_rejected_cleanly(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--ops", "0"])
        with pytest.raises(SystemExit):
            main(["campaign", "--fault-rate", "-0.5"])

    def test_no_resilience_runs_bare_only(self, capsys):
        assert main(
            ["campaign", "--ops", "20", "--no-resilience",
             "--fault-rate", "0.01"]
        ) == 0
        out = capsys.readouterr().out
        assert "recovery_off" in out
        assert "recovery_on" not in out

    def test_scrub_and_adaptive_flags_reported(self, capsys):
        assert main(
            ["campaign", "--ops", "40", "--fault-rate", "0.01",
             "--shift-fault-rate", "0.001", "--scrub-interval", "8",
             "--adaptive", "--storm-ops", "20",
             "--calm-fault-rate", "1e-5", "--storage-rows", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "proactive_catches" in out
        assert "escalations" in out
        assert "storage_wrong" in out

    def test_uncorrectable_faults_exit_nonzero(self, capsys):
        # At 45% per-TR faults the vote frequently ends three-way split
        # and even 7-MR escalation cannot assemble a majority.
        assert main(
            ["campaign", "--ops", "4", "--fault-rate", "0.45",
             "--seed", "0"]
        ) == 1
        out = capsys.readouterr().out
        assert "campaign ended with uncorrectable faults" in out

    def test_bare_corruption_does_not_fail_exit_code(self, capsys):
        # Without recovery nothing is *detected*, so the run exits 0:
        # the exit code reports uncorrectable faults, not silent ones.
        assert main(
            ["campaign", "--ops", "4", "--fault-rate", "0.45",
             "--seed", "0", "--no-resilience"]
        ) == 0

    def test_checkpoint_resume_flow(self, tmp_path, capsys):
        path = str(tmp_path / "journal.json")
        base = ["campaign", "--ops", "30", "--fault-rate", "0.01",
                "--checkpoint", path, "--checkpoint-every", "5"]
        assert main(base + ["--stop-after", "10"]) == 0
        first = capsys.readouterr().out
        assert "completed: False" in first
        assert main(base) == 0
        second = capsys.readouterr().out
        assert "resumed_from: 10" in second
        assert "completed: True" in second

    def test_new_flag_validation(self):
        bad = [
            ["campaign", "--adaptive", "--no-resilience"],
            ["campaign", "--scrub-interval", "0"],
            ["campaign", "--checkpoint-every", "0"],
            ["campaign", "--stop-after", "-1"],
            ["campaign", "--storage-rows", "-2"],
            ["campaign", "--calm-fault-rate", "1.5"],
        ]
        for argv in bad:
            with pytest.raises(SystemExit):
                main(argv)


class TestTableCommands:
    @pytest.mark.parametrize("command", ["table3", "table4", "table5", "table6"])
    def test_tables_run(self, command, capsys):
        assert main([command]) == 0
        assert "==" in capsys.readouterr().out
