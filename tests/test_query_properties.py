"""Property-based tests: random predicate trees on the query engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import CoruscantSystem, MemoryGeometry
from repro.workloads.bitmap import BitmapDatabase
from repro.workloads.query import (
    And,
    Attr,
    Not,
    Or,
    QueryEngine,
    reference_evaluate,
)

WIDTH = 32
ATTRS = ("a", "b", "c", "d")


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(17)
    database = BitmapDatabase(num_items=WIDTH)
    for i, name in enumerate(ATTRS):
        database.add(
            name, (rng.random(WIDTH) < 0.3 + 0.1 * i).astype(np.uint8)
        )
    return database


def trees(depth: int = 3):
    """Random predicate trees up to ``depth`` levels."""
    leaf = st.sampled_from(ATTRS).map(Attr)
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            children.map(Not),
            st.lists(children, min_size=2, max_size=5).map(
                lambda cs: And(*cs)
            ),
            st.lists(children, min_size=2, max_size=5).map(
                lambda cs: Or(*cs)
            ),
        ),
        max_leaves=8,
    )


class TestRandomTrees:
    @given(trees())
    @settings(max_examples=30, deadline=None)
    def test_engine_matches_reference(self, db, query):
        system = CoruscantSystem(
            trd=7, geometry=MemoryGeometry(tracks_per_dbc=WIDTH)
        )
        engine = QueryEngine(system, db)
        result = engine.run(query)
        want = reference_evaluate(query, db)
        assert result.count == int(want.sum())
        assert result.bits[:WIDTH] == want.tolist()

    @given(trees())
    @settings(max_examples=15, deadline=None)
    def test_trd3_engine_agrees(self, db, query):
        system = CoruscantSystem(
            trd=3, geometry=MemoryGeometry(tracks_per_dbc=WIDTH)
        )
        engine = QueryEngine(system, db)
        assert engine.run(query).count == int(
            reference_evaluate(query, db).sum()
        )
