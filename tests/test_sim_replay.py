"""Tests for the measured trace-replay path."""

import pytest

from repro.sim.replay import ReplayConfig, TraceReplayer
from repro.workloads.polybench import kernel_by_name


@pytest.fixture(scope="module")
def replayer():
    return TraceReplayer()


@pytest.fixture(scope="module")
def gemm_small():
    return kernel_by_name("gemm").with_dims(ni=12, nj=12, nk=12)


class TestReplay:
    def test_pim_faster_than_cpu(self, replayer, gemm_small):
        result = replayer.replay_kernel(gemm_small, max_entries=5000)
        assert result.speedup_vs_dwm > 1.0
        assert result.speedup_vs_dram > 1.0

    def test_dram_not_faster_than_dwm(self, replayer, gemm_small):
        result = replayer.replay_kernel(gemm_small, max_entries=5000)
        assert result.cpu_dram_cycles >= result.cpu_dwm_cycles * 0.9

    def test_measured_agrees_with_analytic_direction(self, replayer):
        """Measured replay and analytic model agree on who wins."""
        from repro.sim.experiments import polybench_experiment

        analytic = {
            r.name: r.speedup_vs_dwm
            for r in polybench_experiment()
        }
        for name in ("gemm", "mvt"):
            small = kernel_by_name(name)
            if name == "gemm":
                small = small.with_dims(ni=12, nj=12, nk=12)
            else:
                small = small.with_dims(n=24)
            result = replayer.replay_kernel(small, max_entries=5000)
            assert (result.speedup_vs_dwm > 1.0) == (analytic[name] > 1.0)

    def test_queueing_dominates_saturated_cpu_replay(self, replayer, gemm_small):
        result = replayer.replay_kernel(gemm_small, max_entries=5000)
        assert result.cpu_stats.queue_fraction > 0.5

    def test_config_knobs(self, gemm_small):
        slow_dispatch = TraceReplayer(
            ReplayConfig(pim_dispatch_cycles=50.0)
        ).replay_kernel(gemm_small, max_entries=3000)
        fast_dispatch = TraceReplayer(
            ReplayConfig(pim_dispatch_cycles=2.0)
        ).replay_kernel(gemm_small, max_entries=3000)
        assert fast_dispatch.pim_cycles < slow_dispatch.pim_cycles
