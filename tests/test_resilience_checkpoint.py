"""Tests for crash-safe checkpointing and bit-identical resume.

The tentpole guarantee: a campaign interrupted at any point and resumed
from its journal produces exactly the final report of the uninterrupted
run — RNG streams, fault counters, and device state all survive the
round trip through JSON.
"""

import json
import random

import pytest

from repro.reliability.campaign import (
    CampaignConfig,
    resume_add_campaign,
    run_add_campaign,
)
from repro.reliability.montecarlo import FaultCampaign
from repro.resilience import checkpoint as ckpt
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointMismatchError,
)


def storm_config(seed=0, ops=60):
    return CampaignConfig(
        ops=ops,
        tr_fault_rate=1e-2,
        shift_fault_rate=1e-3,
        seed=seed,
        recovery=True,
        adaptive=True,
        scrub_interval=8,
        storm_ops=ops // 2,
        calm_tr_fault_rate=1e-5,
        storage_rows=4,
    )


class TestPrimitives:
    def test_rng_state_json_roundtrip(self):
        rng = random.Random(1234)
        rng.random()
        state = ckpt.rng_state_to_json(rng.getstate())
        # Survives an actual JSON round trip (tuples become lists).
        state = json.loads(json.dumps(state))
        clone = random.Random()
        clone.setstate(ckpt.rng_state_from_json(state))
        assert [clone.random() for _ in range(5)] == [
            rng.random() for _ in range(5)
        ]

    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "ck.json")
        ckpt.save_checkpoint(path, {"hello": [1, 2, 3]})
        document = ckpt.load_checkpoint(path)
        assert document["hello"] == [1, 2, 3]
        assert document["format"] == ckpt.FORMAT_VERSION

    def test_save_is_atomic_replace(self, tmp_path):
        path = str(tmp_path / "ck.json")
        ckpt.save_checkpoint(path, {"n": 1})
        ckpt.save_checkpoint(path, {"n": 2})
        assert ckpt.load_checkpoint(path)["n"] == 2
        assert list(tmp_path.iterdir()) == [tmp_path / "ck.json"]

    def test_unknown_format_version_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"format": ckpt.FORMAT_VERSION + 1}))
        with pytest.raises(CheckpointError):
            ckpt.load_checkpoint(str(path))

    def test_fingerprint_mismatch_raises(self):
        document = {"fingerprint": {"seed": 0}}
        ckpt.verify_fingerprint(document, {"seed": 0}, "ck.json")
        with pytest.raises(CheckpointMismatchError):
            ckpt.verify_fingerprint(document, {"seed": 1}, "ck.json")

    def test_fingerprint_mismatch_names_differing_fields(self):
        document = {"fingerprint": {"seed": 0, "ops": 10}}
        with pytest.raises(CheckpointMismatchError, match="seed"):
            ckpt.verify_fingerprint(
                document, {"seed": 1, "ops": 10}, "ck.json"
            )

    def test_v1_journal_still_readable(self, tmp_path):
        # Pre-sharding journals (format 1, no config hash / shard
        # fields) must keep loading and resuming as shard 0 of 1.
        path = tmp_path / "ck.json"
        path.write_text(
            json.dumps({"format": 1, "fingerprint": {"seed": 0}, "op": 5})
        )
        document = ckpt.load_checkpoint(str(path))
        assert document["op"] == 5
        ckpt.verify_resume(document, {"seed": 0}, str(path))

    def test_discard_torn_temp(self, tmp_path):
        path = str(tmp_path / "ck.json")
        ckpt.save_checkpoint(path, {"n": 1})
        assert not ckpt.discard_torn_temp(path)
        with open(path + ".tmp", "w", encoding="utf-8") as fh:
            fh.write('{"format": 2, "trunc')
        assert ckpt.discard_torn_temp(path)
        assert not (tmp_path / "ck.json.tmp").exists()
        # The intact journal itself is untouched.
        assert ckpt.load_checkpoint(path)["n"] == 1

    def test_config_hash_is_stable_and_order_free(self):
        assert ckpt.config_hash({"a": 1, "b": 2}) == ckpt.config_hash(
            {"b": 2, "a": 1}
        )
        assert ckpt.config_hash({"a": 1}) != ckpt.config_hash({"a": 2})
        assert len(ckpt.config_hash({"a": 1})) == 16


class TestVerifyResume:
    def document(self, fingerprint, shard=0, shards=1):
        return {
            "format": ckpt.FORMAT_VERSION,
            "fingerprint": fingerprint,
            "config_hash": ckpt.config_hash(fingerprint),
            "shard": shard,
            "shards": shards,
        }

    def test_matching_document_passes(self):
        fp = {"seed": 0, "ops": 10}
        ckpt.verify_resume(self.document(fp), fp, "ck.json")
        ckpt.verify_resume(
            self.document(fp, shard=2, shards=4), fp, "ck.json",
            shard=2, shards=4,
        )

    def test_unknown_format_rejected(self):
        fp = {"seed": 0}
        document = self.document(fp)
        document["format"] = 99
        with pytest.raises(CheckpointMismatchError, match="format"):
            ckpt.verify_resume(document, fp, "ck.json")

    def test_config_hash_mismatch_rejected(self):
        document = self.document({"seed": 0})
        with pytest.raises(CheckpointMismatchError, match="config hash"):
            ckpt.verify_resume(document, {"seed": 1}, "ck.json")

    def test_shard_identity_mismatch_rejected(self):
        fp = {"seed": 0}
        document = self.document(fp, shard=1, shards=4)
        with pytest.raises(CheckpointMismatchError, match="shard"):
            ckpt.verify_resume(document, fp, "ck.json", shard=2, shards=4)
        with pytest.raises(CheckpointMismatchError, match="shard"):
            ckpt.verify_resume(document, fp, "ck.json", shard=1, shards=2)

    def test_saved_v2_journal_round_trips(self, tmp_path):
        fp = {"seed": 3, "ops": 7}
        path = str(tmp_path / "ck.json")
        ckpt.save_checkpoint(
            path,
            {
                "fingerprint": fp,
                "config_hash": ckpt.config_hash(fp),
                "shard": 1,
                "shards": 2,
            },
        )
        document = ckpt.load_checkpoint(path)
        assert document["format"] == 2
        ckpt.verify_resume(document, fp, path, shard=1, shards=2)


class TestCampaignResume:
    @pytest.mark.parametrize("seed", [0, 5])
    @pytest.mark.parametrize("stop_after", [1, 23, 59])
    def test_resume_is_bit_identical(self, tmp_path, seed, stop_after):
        config = storm_config(seed=seed)
        baseline = run_add_campaign(config).summary()
        path = str(tmp_path / "campaign.json")
        partial = run_add_campaign(
            config,
            checkpoint_path=path,
            checkpoint_every=7,
            stop_after=stop_after,
        )
        assert not partial.completed
        resumed = resume_add_campaign(
            config, checkpoint_path=path, checkpoint_every=7
        )
        assert resumed.completed
        assert resumed.resumed_from == stop_after
        summary = resumed.summary()
        summary.pop("resumed_from")
        assert summary == baseline

    def test_multi_leg_resume(self, tmp_path):
        config = storm_config(seed=3)
        baseline = run_add_campaign(config).summary()
        path = str(tmp_path / "campaign.json")
        legs = 0
        result = run_add_campaign(
            config, checkpoint_path=path, checkpoint_every=5, stop_after=13
        )
        while not result.completed:
            legs += 1
            result = resume_add_campaign(
                config, checkpoint_path=path,
                checkpoint_every=5, stop_after=13,
            )
        assert legs >= 4
        summary = result.summary()
        summary.pop("resumed_from")
        assert summary == baseline

    def test_resume_of_finished_run_is_idempotent(self, tmp_path):
        config = storm_config(seed=1, ops=20)
        path = str(tmp_path / "campaign.json")
        first = run_add_campaign(config, checkpoint_path=path)
        again = resume_add_campaign(config, checkpoint_path=path)
        assert again.resumed_from == config.ops
        summary = again.summary()
        summary.pop("resumed_from")
        assert summary == first.summary()

    def test_resume_without_journal_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            resume_add_campaign(
                storm_config(), str(tmp_path / "missing.json")
            )

    def test_journal_of_other_config_rejected(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        run_add_campaign(
            storm_config(seed=0), checkpoint_path=path, stop_after=5
        )
        with pytest.raises(CheckpointMismatchError):
            run_add_campaign(storm_config(seed=1), checkpoint_path=path)


class TestMonteCarloResume:
    def campaign(self, seed=0):
        return FaultCampaign(trd=7, fault_rate=5e-3, seed=seed)

    @pytest.mark.parametrize("stop_after", [1, 17, 39])
    def test_additions_resume_identical(self, tmp_path, stop_after):
        baseline = self.campaign().run_additions(trials=40)
        path = str(tmp_path / "mc.json")
        partial = self.campaign().run_additions(
            trials=40,
            checkpoint_path=path,
            checkpoint_every=10,
            stop_after=stop_after,
        )
        assert not partial.completed
        resumed = self.campaign().run_additions(
            trials=40, checkpoint_path=path, checkpoint_every=10
        )
        assert resumed.completed
        assert (resumed.trials, resumed.errors) == (
            baseline.trials,
            baseline.errors,
        )
        assert resumed.error_rate == baseline.error_rate

    def test_multiplies_resume_identical(self, tmp_path):
        baseline = self.campaign(seed=2).run_multiplies(trials=25)
        path = str(tmp_path / "mc.json")
        self.campaign(seed=2).run_multiplies(
            trials=25, checkpoint_path=path,
            checkpoint_every=5, stop_after=8,
        )
        resumed = self.campaign(seed=2).run_multiplies(
            trials=25, checkpoint_path=path, checkpoint_every=5
        )
        assert (resumed.trials, resumed.errors) == (
            baseline.trials,
            baseline.errors,
        )

    def test_kind_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "mc.json")
        self.campaign().run_additions(
            trials=10, checkpoint_path=path, stop_after=3
        )
        with pytest.raises(CheckpointMismatchError):
            self.campaign().run_multiplies(trials=10, checkpoint_path=path)
