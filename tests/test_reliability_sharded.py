"""Tests for sharded campaigns: supervision + bit-identical merge.

The tentpole guarantee, verified by literally diffing the canonical
report bytes: a campaign split into N supervised worker processes — even
one whose workers get SIGKILLed, hang past the timeout, or resume from
per-shard journals — produces exactly the report of the sequential
in-process run, which for ``shards=1`` is the plain single-process
campaign.
"""

import json
import os

import pytest

from repro.reliability.campaign import (
    CampaignConfig,
    run_add_campaign,
    shard_bounds,
)
from repro.reliability.montecarlo import FaultCampaign
from repro.reliability.sharded import (
    CAMPAIGN_SCHEMA,
    MC_SCHEMA,
    ShardSupervisor,
    journal_path,
    merge_campaign_records,
    report_bytes,
    run_sharded_campaign,
    run_sharded_mc,
)
from repro.telemetry import TelemetryHub


def storm_config(seed=0, ops=40):
    return CampaignConfig(
        ops=ops,
        tr_fault_rate=1e-2,
        shift_fault_rate=1e-3,
        seed=seed,
        recovery=True,
        scrub_interval=8,
        storm_ops=ops // 2,
        calm_tr_fault_rate=1e-4,
    )


class TestShardBounds:
    def test_partition_is_contiguous_and_complete(self):
        for ops, shards in ((40, 4), (41, 4), (7, 3), (5, 5)):
            bounds = [shard_bounds(ops, k, shards) for k in range(shards)]
            assert bounds[0][0] == 0
            assert bounds[-1][1] == ops
            for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                assert hi == lo
            sizes = [hi - lo for lo, hi in bounds]
            assert max(sizes) - min(sizes) <= 1

    def test_single_shard_is_whole_range(self):
        assert shard_bounds(100, 0, 1) == (0, 100)

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_bounds(10, 0, 0)
        with pytest.raises(ValueError):
            shard_bounds(10, 4, 4)
        with pytest.raises(ValueError):
            shard_bounds(3, 0, 4)

    def test_more_shards_than_ops_rejected_at_every_index(self):
        # The guard must hold for every shard index, not just shard 0:
        # a worker asking for shard 3 of a 2-op run is a caller bug.
        for shard in range(4):
            with pytest.raises(ValueError, match="cannot split"):
                shard_bounds(2, shard, 4)

    def test_zero_ops_rejected(self):
        # CampaignConfig already requires ops >= 1; shard_bounds must
        # not quietly hand out empty ranges below that floor.
        with pytest.raises(ValueError):
            shard_bounds(0, 0, 1)
        with pytest.raises(ValueError):
            shard_bounds(0, 0, 2)

    def test_single_op_single_shard(self):
        assert shard_bounds(1, 0, 1) == (0, 1)

    def test_ops_equal_shards_gives_one_op_each(self):
        bounds = [shard_bounds(3, k, 3) for k in range(3)]
        assert bounds == [(0, 1), (1, 2), (2, 3)]


class TestBitIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_multiprocess_equals_sequential(self, shards):
        config = storm_config()
        sequential = run_sharded_campaign(config, shards=shards, workers=0)
        multiproc = run_sharded_campaign(config, shards=shards)
        assert report_bytes(sequential.report) == report_bytes(
            multiproc.report
        )
        assert sequential.report["schema"] == CAMPAIGN_SCHEMA

    def test_single_shard_merge_matches_plain_run(self):
        config = storm_config(seed=2)
        plain = run_add_campaign(config).summary()
        merged = run_sharded_campaign(config, shards=1, workers=0).report[
            "merged"
        ]
        for key, value in merged.items():
            assert plain[key] == value, key

    def test_report_is_wall_clock_free(self):
        config = storm_config(seed=1)
        blob = report_bytes(
            run_sharded_campaign(config, shards=2, workers=0).report
        )
        assert b"wall" not in blob
        assert b"resumed_from" not in blob


class TestCrashRecovery:
    def test_sigkilled_worker_resumes_bit_identical(self, tmp_path):
        config = storm_config(seed=4)
        baseline = run_sharded_campaign(config, shards=2, workers=0)
        crashed = run_sharded_campaign(
            config,
            shards=2,
            journal_dir=str(tmp_path / "j"),
            checkpoint_every=5,
            crash={"shard": 1, "at_op": 30, "mode": "kill"},
        )
        statuses = [
            a.status for a in crashed.attempts if a.shard == 1
        ]
        assert statuses == ["crashed", "completed"]
        assert crashed.complete
        assert report_bytes(crashed.report) == report_bytes(baseline.report)
        # The merged report was persisted next to the journals.
        on_disk = (tmp_path / "j" / "report.json").read_bytes()
        assert on_disk == report_bytes(baseline.report)

    def test_hung_worker_times_out_and_retries(self, tmp_path):
        config = storm_config(seed=5)
        baseline = run_sharded_campaign(config, shards=2, workers=0)
        hub = TelemetryHub()
        hung = run_sharded_campaign(
            config,
            shards=2,
            journal_dir=str(tmp_path / "j"),
            checkpoint_every=5,
            shard_timeout=3.0,
            telemetry=hub,
            crash={"shard": 0, "at_op": 10, "mode": "hang"},
        )
        assert hung.complete
        assert report_bytes(hung.report) == report_bytes(baseline.report)
        counters = hub.metrics_dict()["counters"]
        assert counters["campaign.shard_timeout"] >= 1
        assert counters["campaign.shard_retries"] >= 1

    def test_retry_exhaustion_degrades_gracefully(self, tmp_path):
        config = storm_config(seed=6)
        hub = TelemetryHub()
        degraded = run_sharded_campaign(
            config,
            shards=2,
            journal_dir=str(tmp_path / "j"),
            max_shard_retries=1,
            telemetry=hub,
            crash={"shard": 1, "at_op": 25, "mode": "kill-always"},
        )
        assert not degraded.complete
        assert degraded.incomplete_shards == [1]
        assert degraded.report["incomplete_shards"] == [
            {"shard": 1, "reason": "worker crashed"}
        ]
        # The healthy shard's results are still in the partial report.
        assert [r["shard"] for r in degraded.report["shard_reports"]] == [0]
        assert degraded.report["merged"]["ops"] == shard_bounds(
            config.ops, 0, 2
        )[1]
        assert hub.metrics_dict()["counters"][
            "campaign.incomplete_shards"
        ] == 1

    def test_crash_injection_rejected_inline(self):
        with pytest.raises(ValueError):
            run_sharded_campaign(
                storm_config(),
                shards=2,
                workers=0,
                crash={"shard": 0, "at_op": 1},
            )


class TestJournalRobustness:
    def test_torn_temp_file_is_discarded(self, tmp_path):
        config = storm_config(seed=7)
        baseline = run_sharded_campaign(config, shards=2, workers=0)
        journal_dir = tmp_path / "j"
        journal_dir.mkdir()
        # A crash mid-save leaves a truncated temp beside the journal.
        torn = journal_path(str(journal_dir), 0) + ".tmp"
        with open(torn, "w", encoding="utf-8") as fh:
            fh.write('{"format": 2, "trunca')
        result = run_sharded_campaign(
            config, shards=2, workers=0, journal_dir=str(journal_dir)
        )
        assert not os.path.exists(torn)
        assert report_bytes(result.report) == report_bytes(baseline.report)

    def test_corrupt_journal_is_quarantined(self, tmp_path):
        config = storm_config(seed=8)
        baseline = run_sharded_campaign(config, shards=2, workers=0)
        journal_dir = tmp_path / "j"
        journal_dir.mkdir()
        journal = journal_path(str(journal_dir), 1)
        with open(journal, "w", encoding="utf-8") as fh:
            fh.write("not json at all")
        result = run_sharded_campaign(
            config, shards=2, workers=0, journal_dir=str(journal_dir)
        )
        assert os.path.exists(journal + ".corrupt")
        assert report_bytes(result.report) == report_bytes(baseline.report)

    def test_stale_journal_of_other_campaign_fails_shard(self, tmp_path):
        # A journal from a different config is a configuration error:
        # the shard fails (and is retried / reported), never silently
        # merges foreign state.
        journal_dir = tmp_path / "j"
        run_sharded_campaign(
            storm_config(seed=0),
            shards=2,
            workers=0,
            journal_dir=str(journal_dir),
        )
        for shard in range(2):
            assert os.path.exists(journal_path(str(journal_dir), shard))
        result = run_sharded_campaign(
            storm_config(seed=99),
            shards=2,
            workers=0,
            max_shard_retries=0,
            journal_dir=str(journal_dir),
        )
        assert result.incomplete_shards == [0, 1]
        assert all(
            a.status == "failed" for a in result.attempts
        )


class TestSupervisor:
    def test_inline_failure_retries_then_reports_incomplete(self):
        calls = {"n": 0}

        def worker(spec):
            calls["n"] += 1
            raise RuntimeError("boom")

        supervisor = ShardSupervisor(
            worker,
            [{"shard": 0}],
            workers=0,
            max_shard_retries=2,
        )
        outcome = supervisor.run()
        assert calls["n"] == 3  # first attempt + 2 retries
        assert outcome.incomplete == {0: "failed: boom"}
        assert [a.status for a in outcome.attempts] == ["failed"] * 3
        assert [a.attempt for a in outcome.attempts] == [1, 2, 3]

    def test_invalid_supervisor_parameters(self):
        with pytest.raises(ValueError):
            ShardSupervisor(lambda s: s, [], max_shard_retries=-1)
        with pytest.raises(ValueError):
            ShardSupervisor(lambda s: s, [], shard_timeout=0)
        with pytest.raises(ValueError):
            ShardSupervisor(lambda s: s, [], workers=-1)


class TestMerge:
    def record(self, shard, **overrides):
        base = {
            "shard": shard,
            "ops": 10,
            "injected": 20,
            "detected": 18,
            "corrected": 16,
            "escaped": 1,
            "retries": 2,
            "escalations": 0,
            "uncorrectable": 0,
            "overhead_cycles": 100,
            "total_cycles": 400,
            "recovery": True,
            "completed": True,
            "analytic_op_error_rate": 0.01,
        }
        base.update(overrides)
        return base

    def test_counters_sum_and_rates_recompute(self):
        merged = merge_campaign_records(
            [self.record(0), self.record(1, detected=20, corrected=20)],
            analytic_op_error_rate=0.01,
        )
        assert merged["ops"] == 20
        assert merged["injected"] == 40
        assert merged["detection_rate"] == round(38 / 40, 4)
        assert merged["correction_rate"] == round(36 / 40, 4)
        assert merged["observed_op_error_rate"] == round(2 / 20, 6)
        assert merged["completed"]

    def test_scrub_stats_merge_by_key(self):
        merged = merge_campaign_records(
            [
                self.record(0, scrub={"passes": 2, "repaired_tracks": 1}),
                self.record(1, scrub={"passes": 3, "repaired_tracks": 0}),
            ],
            analytic_op_error_rate=0.01,
        )
        assert merged["scrub"] == {"passes": 5, "repaired_tracks": 1}

    def test_unused_storage_keys_dropped(self):
        merged = merge_campaign_records(
            [self.record(0)], analytic_op_error_rate=0.01
        )
        assert "storage_ops" not in merged
        assert "storage_wrong" not in merged

    def test_zero_injected_rates_default_to_one(self):
        merged = merge_campaign_records(
            [
                self.record(
                    0, injected=0, detected=0, corrected=0, escaped=0
                )
            ],
            analytic_op_error_rate=0.0,
        )
        assert merged["detection_rate"] == 1.0
        assert merged["correction_rate"] == 1.0


class TestShardedMonteCarlo:
    def test_multiprocess_equals_sequential(self):
        kwargs = dict(trials=40, fault_rate=5e-3, seed=3)
        sequential = run_sharded_mc("additions", shards=2, workers=0, **kwargs)
        multiproc = run_sharded_mc("additions", shards=2, **kwargs)
        assert report_bytes(sequential.report) == report_bytes(
            multiproc.report
        )
        assert sequential.report["schema"] == MC_SCHEMA

    def test_single_shard_matches_plain_campaign(self):
        plain = FaultCampaign(trd=7, fault_rate=5e-3, seed=1).run_additions(
            trials=30
        )
        merged = run_sharded_mc(
            "additions",
            trials=30,
            shards=1,
            fault_rate=5e-3,
            seed=1,
            workers=0,
        ).report["merged"]
        assert merged["trials"] == plain.trials
        assert merged["errors"] == plain.errors

    def test_journal_resume_round_trip(self, tmp_path):
        kwargs = dict(trials=30, fault_rate=5e-3, seed=2)
        baseline = run_sharded_mc("additions", shards=2, workers=0, **kwargs)
        journal_dir = str(tmp_path / "j")
        first = run_sharded_mc(
            "additions",
            shards=2,
            workers=0,
            journal_dir=journal_dir,
            checkpoint_every=5,
            **kwargs,
        )
        # Journals persisted; a rerun resumes from them (idempotent).
        again = run_sharded_mc(
            "additions",
            shards=2,
            workers=0,
            journal_dir=journal_dir,
            checkpoint_every=5,
            **kwargs,
        )
        assert report_bytes(first.report) == report_bytes(baseline.report)
        assert report_bytes(again.report) == report_bytes(baseline.report)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            run_sharded_mc("divisions", trials=10, shards=1, fault_rate=0.01)


class TestShardSummaries:
    def test_supervision_rides_outside_the_canonical_report(self, tmp_path):
        config = storm_config(seed=9)
        result = run_sharded_campaign(
            config,
            shards=2,
            journal_dir=str(tmp_path / "j"),
            checkpoint_every=5,
            crash={"shard": 0, "at_op": 5, "mode": "kill"},
        )
        summaries = {s["shard"]: s for s in result.shard_summaries()}
        assert summaries[0]["supervisor_attempts"] == 2
        assert summaries[1]["supervisor_attempts"] == 1
        assert all("wall_seconds" in s for s in summaries.values())
        # ...but none of it leaks into the report the bytes-diff covers.
        canonical = json.loads(report_bytes(result.report))
        for record in canonical["shard_reports"]:
            assert "supervisor_attempts" not in record
            assert "wall_seconds" not in record
