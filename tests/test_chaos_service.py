"""Chaos behaviour of the service stack itself.

Covers the seams the campaign exercises, in isolation: worker-crash
supervision in the dispatcher, gateway idempotency + journal replay,
the client's 429 ``Retry-After`` discipline, and the hardened event
log that degrades instead of failing requests.
"""

import threading
import time

import pytest

from repro.chaos import hooks
from repro.chaos.faults import ChaosInjector, FaultEvent
from repro.service.client import ServiceClient
from repro.service.gateway import Gateway
from repro.service.journal import RequestJournal
from repro.telemetry import EventLog, JsonlSink, MemorySink, TelemetryHub, Tracer


@pytest.fixture(autouse=True)
def chaos_off():
    yield
    hooks.deactivate()


def chaos_client(journal_path=None, **gateway_kwargs):
    journal = (
        RequestJournal(str(journal_path)) if journal_path else None
    )
    gateway = Gateway(workers=1, journal=journal, **gateway_kwargs)
    return ServiceClient(gateway=gateway, rejection_retries=0)


PAYLOAD = {"words": [4, 5], "n_bits": 8}


class TestWorkerCrashSupervision:
    def test_crash_is_answered_and_worker_respawns(self):
        injector = ChaosInjector(
            [FaultEvent(op=0, kind="worker-crash", param=0.0)]
        )
        with chaos_client() as client:
            hooks.activate(injector)
            try:
                injector.advance(0)
                crashed = client.request("add", PAYLOAD)
            finally:
                hooks.deactivate()
            assert crashed.http_status == 500
            assert crashed.body["error"] == "worker_crashed"
            # The pool respawned: the next request lands normally.
            after = client.request("add", PAYLOAD)
            assert after.status == "ok"
            assert after.body["result"]["sum"] == 9

            dispatcher = client.gateway.dispatchers["default"]
            snapshot = dispatcher.snapshot()
            assert snapshot["worker_crashes"] == 1
            # A process death is not device-fault evidence: the
            # breaker must not have consumed a failure sample.
            assert dispatcher.breaker.snapshot()["state"] == "CLOSED"

    def test_accounting_conserved_across_crash(self):
        injector = ChaosInjector(
            [FaultEvent(op=0, kind="worker-crash", param=0.0)]
        )
        with chaos_client() as client:
            hooks.activate(injector)
            try:
                injector.advance(0)
                client.request("add", PAYLOAD)
            finally:
                hooks.deactivate()
            client.request("add", PAYLOAD)
            metrics = (
                client.gateway.telemetry.metrics.as_dict()["counters"]
            )
            # Both requests terminal: the crash reclassified one, lost
            # none.
            assert metrics["service.requests"] == 2
            assert metrics["service.admitted"] == 2


class TestGatewayIdempotency:
    def test_duplicate_key_replays_original(self, tmp_path):
        with chaos_client(tmp_path / "journal.jsonl") as client:
            first = client.request(
                "add", PAYLOAD, idempotency_key="dup-1"
            )
            assert first.status == "ok"
            assert "replayed" not in first.body
            second = client.request(
                "add", PAYLOAD, idempotency_key="dup-1"
            )
            assert second.body["replayed"] is True
            assert (
                second.body["result"] == first.body["result"]
            )
            assert (
                second.body["request_id"] == first.body["request_id"]
            )
            counters = (
                client.gateway.telemetry.metrics.as_dict()["counters"]
            )
            assert counters["journal.dedup_hits"] == 1
            # Only one execution happened.
            assert counters["service.requests"] == 1

    def test_invalid_idempotency_key_rejected(self, tmp_path):
        with chaos_client(tmp_path / "journal.jsonl") as client:
            for bad in ("", 7):
                body = dict(PAYLOAD)
                response = client.request(
                    "add", body, idempotency_key=bad
                )
                assert response.http_status == 400

    def test_admission_rejects_are_not_journalled(self, tmp_path):
        with chaos_client(tmp_path / "journal.jsonl") as client:
            response = client.request(
                "transmogrify", {}, idempotency_key="bad-req"
            )
            assert response.http_status == 400
            # Refused before acceptance: nothing to replay or dedup —
            # the client should fix and retry, not get the refusal
            # replayed back forever.
            journal = client.gateway.journal
            assert not journal.has_intent("bad-req")
            assert journal.get_ack("bad-req") is None

    def test_execution_rejects_are_acked(self, tmp_path):
        # A payload that passes admission but fails validation in the
        # kernel runner is an *accepted* request: its 400 is acked and
        # dedups like any other terminal response.
        with chaos_client(tmp_path / "journal.jsonl") as client:
            first = client.request(
                "add", {"words": "nope"}, idempotency_key="bad-pay"
            )
            assert first.http_status == 400
            journal = client.gateway.journal
            assert journal.get_ack("bad-pay")["http_status"] == 400
            again = client.request(
                "add", {"words": "nope"}, idempotency_key="bad-pay"
            )
            assert again.body["replayed"] is True

    def test_restart_replays_unacked_intents(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        injector = ChaosInjector(
            [FaultEvent(op=0, kind="ack-suppress", param=0.0)]
        )
        with chaos_client(journal_path) as client:
            hooks.activate(injector)
            try:
                injector.advance(0)
                original = client.request(
                    "add", PAYLOAD, idempotency_key="lost-ack"
                )
            finally:
                hooks.deactivate()
            assert original.status == "ok"

        # New process: the ack never reached disk, so starting the
        # client replays the intent before serving traffic.
        with chaos_client(journal_path) as client:
            replayed = client.gateway.last_replay
            assert [r["key"] for r in replayed] == ["lost-ack"]
            assert replayed[0]["status"] == "ok"
            # A duplicate submission now hits the replayed ack.
            again = client.request(
                "add", PAYLOAD, idempotency_key="lost-ack"
            )
            assert again.body["replayed"] is True
            assert (
                again.body["result"]["sum"]
                == original.body["result"]["sum"]
            )


class TestClientRetryAfter:
    def test_429_retried_after_hint(self):
        injector = ChaosInjector(
            [FaultEvent(op=0, kind="queue-saturation", param=0.001)]
        )
        gateway = Gateway(workers=1)
        with ServiceClient(
            gateway=gateway, rejection_retries=2
        ) as client:
            hooks.activate(injector)
            try:
                injector.advance(0)
                response = client.request("add", PAYLOAD)
            finally:
                hooks.deactivate()
            assert response.status == "ok"
            assert client.rejection_retry_count == 1

    def test_retry_after_hint_is_honoured(self):
        injector = ChaosInjector(
            [FaultEvent(op=0, kind="queue-saturation", param=0.4)]
        )
        gateway = Gateway(workers=1)
        with ServiceClient(
            gateway=gateway, rejection_retries=1
        ) as client:
            hooks.activate(injector)
            try:
                injector.advance(0)
                started = time.monotonic()
                response = client.request("add", PAYLOAD)
                elapsed = time.monotonic() - started
            finally:
                hooks.deactivate()
            assert response.status == "ok"
            # Slept at least the server's Retry-After hint.
            assert elapsed >= 0.4

    def test_retries_exhausted_surfaces_429(self):
        injector = ChaosInjector(
            [
                FaultEvent(op=0, kind="queue-saturation", param=0.001),
                FaultEvent(op=0, kind="queue-saturation", param=0.001),
            ]
        )
        gateway = Gateway(workers=1)
        with ServiceClient(
            gateway=gateway, rejection_retries=1
        ) as client:
            hooks.activate(injector)
            try:
                injector.advance(0)
                response = client.request("add", PAYLOAD)
            finally:
                hooks.deactivate()
            assert response.http_status == 429
            assert client.rejection_retry_count == 1

    def test_503_draining_is_not_retried(self):
        gateway = Gateway(workers=1)
        with ServiceClient(
            gateway=gateway, rejection_retries=3
        ) as client:
            gateway.draining = True
            response = client.request("add", PAYLOAD)
            assert response.http_status == 503
            assert response.body["error"] == "draining"
            assert client.rejection_retry_count == 0


class BrokenSink:
    enabled = True

    def __init__(self, fail_times=10**9):
        self.fail_times = fail_times
        self.emitted = []

    def emit(self, record):
        if self.fail_times > 0:
            self.fail_times -= 1
            raise OSError(28, "No space left on device")
        self.emitted.append(record)

    def close(self):
        return None


class TestEventLogHardening:
    def test_sink_failure_never_propagates(self):
        log = EventLog(BrokenSink())
        assert log.emit("service.request.done", trace_id="t1") is None
        assert log.write_errors == 1

    def test_on_write_error_callback_fires(self):
        seen = []
        log = EventLog(
            BrokenSink(), on_write_error=lambda: seen.append(1)
        )
        log.emit("a")
        log.emit("b")
        assert log.write_errors == 2
        assert len(seen) == 2

    def test_recovers_when_disk_comes_back(self):
        sink = BrokenSink(fail_times=2)
        log = EventLog(sink)
        log.emit("drop-1")
        log.emit("drop-2")
        record = log.emit("lands")
        assert log.write_errors == 2
        assert record is not None
        assert [r["event"] for r in sink.emitted] == ["lands"]

    def test_hub_exposes_write_errors_counter(self):
        hub = TelemetryHub(
            tracer=Tracer(), events=EventLog(BrokenSink())
        )
        hub.service_admitted("add", "interactive")
        counters = hub.metrics.as_dict()["counters"]
        assert counters["events.write_errors"] == 1

    def test_jsonl_sink_reopens_closed_handle(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "events.jsonl"))
        log = EventLog(sink)
        assert log.emit("before") is not None
        sink.close()
        # A closed handle (failed rotation, prior error) comes back on
        # the next emit instead of poisoning the log forever.
        assert log.emit("after") is not None
        assert log.write_errors == 0
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert len(lines) == 2

    def test_chaos_event_io_error_counted(self):
        sink = MemorySink()
        log = EventLog(sink)
        injector = ChaosInjector(
            [FaultEvent(op=0, kind="event-io-error", param=0.0)]
        )
        injector.advance(0)
        hooks.activate(injector)
        try:
            log.emit("victim")
            log.emit("survivor")
        finally:
            hooks.deactivate()
        assert log.write_errors == 1
        assert [r["event"] for r in sink.records] == ["survivor"]
