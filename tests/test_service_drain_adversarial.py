"""Drain correctness under adversarial service states.

The clean-shutdown contract must hold in the worst moments, not just
the idle ones: a drain begun while the admission queue is saturated or
while a profile breaker is OPEN still refuses new work (``/readyz``
503), completes every admitted request, and — for the ``serve``
process — exits 0.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.chaos import hooks
from repro.chaos.faults import ChaosInjector, FaultEvent
from repro.service.admission import AdmissionPolicy
from repro.service.breaker import CLOSED, OPEN
from repro.service.gateway import Gateway

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

PAYLOAD = {"payload": {"words": [5, 6], "n_bits": 8}}


class TestDrainUnderAdversity:
    def run(self, coro):
        return asyncio.run(coro)

    def test_drain_while_queue_saturated(self):
        # One worker, two total slots: three stalled submissions
        # saturate admission, then the drain begins with the queue
        # still full.
        async def scenario():
            gateway = Gateway(
                workers=1,
                admission=AdmissionPolicy(
                    capacity=1, high_reserve=1, retry_after=0.05
                ),
            )
            injector = ChaosInjector(
                [
                    FaultEvent(op=0, kind="worker-slow", param=0.3),
                    FaultEvent(op=0, kind="worker-slow", param=0.3),
                ]
            )
            for dispatcher in gateway.dispatchers.values():
                dispatcher.start()
            hooks.activate(injector)
            try:
                injector.advance(0)
                submitted = [
                    asyncio.create_task(
                        gateway.handle("add", dict(PAYLOAD))
                    )
                    for _ in range(3)
                ]
                # Let the first request reach its stall and the rest
                # pile up.
                await asyncio.sleep(0.1)
                drain = asyncio.create_task(gateway.shutdown())
                await asyncio.sleep(0.05)

                # Mid-drain: not ready, and new work is refused.
                status, body = gateway.readyz()
                assert status == 503
                assert body["draining"] is True
                refused = await gateway.handle("add", dict(PAYLOAD))
                assert refused.http_status == 503
                assert refused.body["error"] == "draining"

                responses = await asyncio.gather(*submitted)
                await drain
                return responses
            finally:
                hooks.deactivate()

        responses = self.run(scenario())
        outcomes = sorted(r.http_status for r in responses)
        # Two admitted requests completed through the drain; the third
        # was refused by the saturated queue — not dropped silently.
        assert outcomes == [200, 200, 429]

    def test_drain_while_breaker_open(self):
        async def scenario():
            gateway = Gateway(workers=1)
            for dispatcher in gateway.dispatchers.values():
                dispatcher.start()
            breaker = gateway.dispatchers["default"].breaker
            # Trip the only profile's breaker the honest way: a run of
            # faulty terminal outcomes.
            while breaker.state == CLOSED:
                breaker.allow()
                breaker.record(True)
            assert breaker.state == OPEN

            # All breakers open: already not ready, before any drain.
            status, body = gateway.readyz()
            assert status == 503
            assert body["ready"] is False

            drain = asyncio.create_task(gateway.shutdown())
            await asyncio.sleep(0.02)
            status, body = gateway.readyz()
            assert status == 503
            assert body["draining"] is True
            await drain
            # Drain completed despite zero serveable profiles.
            assert gateway.draining is True

        self.run(scenario())


class TestServeSigtermUnderLoad:
    def test_sigterm_with_saturated_queue_exits_zero(self, tmp_path):
        port_file = tmp_path / "port"
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--port-file", str(port_file),
                "--workers", "1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists():
                assert proc.poll() is None, proc.communicate()[1]
                assert time.monotonic() < deadline
                time.sleep(0.05)
            port = int(port_file.read_text())

            statuses = []
            lock = threading.Lock()

            def fire():
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/v1/add",
                    data=json.dumps(PAYLOAD).encode(),
                    method="POST",
                )
                try:
                    with urllib.request.urlopen(
                        request, timeout=30
                    ) as response:
                        code = response.status
                except urllib.error.HTTPError as error:
                    code = error.code
                with lock:
                    statuses.append(code)

            # More concurrent requests than one worker drains
            # instantly; SIGTERM lands while they are in flight.
            threads = [
                threading.Thread(target=fire) for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.15)
            proc.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=30)
            stdout, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, stdout
        assert "drained clean" in stdout
        # Every request got a terminal answer: served, refused by the
        # saturated queue (429), or refused by the drain (503) — none
        # hung or died with the process.
        assert len(statuses) == 8
        assert set(statuses) <= {200, 429, 503}
        assert 200 in statuses
