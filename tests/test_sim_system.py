"""Unit tests for the CoruscantSystem facade."""

import pytest

from repro import BulkOp, CoruscantSystem, MemoryGeometry


@pytest.fixture(scope="module")
def system():
    # Small tracks keep whole-memory tests fast.
    return CoruscantSystem(
        trd=7, geometry=MemoryGeometry(tracks_per_dbc=64)
    )


class TestFacade:
    def test_add(self, system):
        assert system.add([13, 200, 7, 99, 55], n_bits=8).value == 374

    def test_add_mod(self, system):
        result = system.add([255, 255], n_bits=8, exact=False)
        assert result.value == (255 + 255) % 256

    def test_multiply(self, system):
        assert system.multiply(173, 219, n_bits=8).value == 173 * 219

    def test_multiply_constant(self, system):
        got = system.multiply_constant(7, 20061, 8, result_bits=24)
        assert got.value == 7 * 20061

    def test_maximum(self, system):
        assert system.maximum([12, 250, 99], n_bits=8).value == 250

    def test_bulk_op_pads_rows(self, system):
        result = system.bulk_op(BulkOp.OR, [[1, 0, 0], [0, 1, 0]])
        assert result.bits[:3] == [1, 1, 0]

    def test_vote(self, system):
        reps = [[1, 0, 1], [1, 1, 1], [1, 0, 0]]
        assert system.vote(reps).bits[:3] == [1, 0, 1]

    def test_row_too_wide_rejected(self, system):
        with pytest.raises(ValueError):
            system.bulk_op(BulkOp.OR, [[0] * 100])

    def test_trd_validation(self):
        with pytest.raises(ValueError):
            CoruscantSystem(trd=6)

    def test_different_banks_are_independent(self, system):
        a = system.pim_dbc(bank=0)
        b = system.pim_dbc(bank=1)
        assert a is not b

    def test_trd3_system(self):
        small = CoruscantSystem(
            trd=3, geometry=MemoryGeometry(tracks_per_dbc=64)
        )
        assert small.add([100, 200], n_bits=8).value == 300


class TestFacadeExtras:
    def test_popcount(self, system):
        bits = [1, 0, 1, 1, 0, 0, 1] * 5
        assert system.popcount(bits) == sum(bits)

    def test_minimum(self, system):
        assert system.minimum([12, 250, 99], n_bits=8).value == 12
