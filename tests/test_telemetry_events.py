"""The structured event log: sinks, schema stamping, rotation."""

import json
import os
import threading

from repro.telemetry import (
    EVENTS_SCHEMA,
    EventLog,
    JsonlSink,
    MemorySink,
    NullSink,
    TraceContext,
    use_context,
)


class TestEventLogCore:
    def test_null_sink_is_the_default_and_disabled(self):
        log = EventLog()
        assert isinstance(log.sink, NullSink)
        assert log.enabled is False
        # Emitting into the void is a cheap no-op, never an error.
        log.emit("service.admitted", kernel="add")

    def test_events_carry_schema_seq_ts_and_name(self):
        sink = MemorySink()
        log = EventLog(sink)
        log.emit("resilience.op", attempts=2, verdict="recovered")
        log.emit("breaker.transition", src="CLOSED", dst="OPEN")
        first, second = sink.records
        assert first["schema"] == EVENTS_SCHEMA == "coruscant-events/1"
        assert first["event"] == "resilience.op"
        assert first["attempts"] == 2 and first["verdict"] == "recovered"
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["ts_us"] > 0 and second["ts_us"] >= first["ts_us"]

    def test_explicit_trace_id_wins_over_ambient(self):
        sink = MemorySink()
        log = EventLog(sink)
        ctx = TraceContext.root()
        with use_context(ctx):
            log.emit("service.retry", kernel="add")
            log.emit("service.shed", trace_id="explicit", kernel="add")
        ambient, explicit = sink.records
        assert ambient["trace_id"] == ctx.trace_id
        assert explicit["trace_id"] == "explicit"

    def test_none_fields_are_dropped(self):
        sink = MemorySink()
        log = EventLog(sink)
        log.emit("service.rejected", trace_id=None, kernel="add", reason=None)
        (event,) = sink.records
        assert "trace_id" not in event
        assert "reason" not in event

    def test_seq_is_monotonic_under_concurrency(self):
        sink = MemorySink(capacity=4096)
        log = EventLog(sink)

        def emit():
            for _ in range(100):
                log.emit("service.retry", kernel="add")

        threads = [threading.Thread(target=emit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = sorted(e["seq"] for e in sink.records)
        assert seqs == list(range(1, 401))


class TestMemorySink:
    def test_ring_drops_oldest(self):
        sink = MemorySink(capacity=3)
        log = EventLog(sink)
        for i in range(5):
            log.emit("service.retry", kernel=f"k{i}")
        kernels = [e["kernel"] for e in sink.records]
        assert kernels == ["k2", "k3", "k4"]


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(JsonlSink(str(path)))
        log.emit("service.admitted", kernel="add", priority="batch")
        log.emit("service.request.done", kernel="add", status="ok")
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        docs = [json.loads(line) for line in lines]
        assert all(d["schema"] == EVENTS_SCHEMA for d in docs)
        assert docs[1]["status"] == "ok"

    def test_rotation_keeps_backups_and_bounds_size(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(JsonlSink(str(path), max_bytes=1024, backups=2))
        for i in range(64):
            log.emit("service.retry", kernel="add", padding="x" * 64)
        log.close()
        assert os.path.exists(path)
        assert os.path.getsize(path) <= 1024
        rotated = [p for p in os.listdir(tmp_path) if ".jsonl." in p]
        assert sorted(rotated) == ["events.jsonl.1", "events.jsonl.2"]
        # Every surviving file still parses line by line.
        for name in ["events.jsonl"] + rotated:
            for line in (tmp_path / name).read_text().splitlines():
                json.loads(line)

    def test_zero_backups_truncates_in_place(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(JsonlSink(str(path), max_bytes=1024, backups=0))
        for _ in range(64):
            log.emit("service.retry", kernel="add", padding="x" * 64)
        log.close()
        assert os.path.getsize(path) <= 1024
        assert not [p for p in os.listdir(tmp_path) if ".jsonl." in p]
