"""The request breaker: CLOSED -> OPEN -> HALF_OPEN on a fake clock."""

import pytest

from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    RequestBreaker,
    RequestBreakerConfig,
)
from repro.service.protocol import ServiceReject
from repro.telemetry.hub import TelemetryHub


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(clock=None, telemetry=None, **kwargs):
    config = RequestBreakerConfig(
        window=4, min_samples=2, trip_threshold=0.5,
        open_seconds=5.0, probe_requests=2, **kwargs
    )
    return RequestBreaker(
        "test", config, clock=clock or FakeClock(), telemetry=telemetry
    )


def trip(breaker, failures=2):
    for _ in range(failures):
        breaker.allow()
        breaker.record(True)


class TestConfig:
    def test_defaults_valid(self):
        RequestBreakerConfig()

    def test_open_seconds_validated(self):
        with pytest.raises(ValueError):
            RequestBreakerConfig(open_seconds=0)

    def test_window_geometry_validated_by_shared_policy(self):
        with pytest.raises(ValueError):
            RequestBreakerConfig(window=2, min_samples=5)


class TestTrip:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker()
        breaker.allow()
        assert breaker.state == CLOSED

    def test_trips_at_threshold_with_min_samples(self):
        breaker = make_breaker()
        breaker.allow()
        breaker.record(True)
        assert breaker.state == CLOSED  # one sample: not enough
        breaker.allow()
        breaker.record(True)
        assert breaker.state == OPEN

    def test_clean_traffic_never_trips(self):
        breaker = make_breaker()
        for _ in range(50):
            breaker.allow()
            breaker.record(False)
        assert breaker.state == CLOSED

    def test_open_fails_fast_with_retry_after(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        trip(breaker)
        clock.advance(1.0)
        with pytest.raises(ServiceReject) as exc:
            breaker.allow()
        assert exc.value.http_status == 503
        assert exc.value.error == "breaker_open"
        assert exc.value.retry_after == pytest.approx(4.0)

    def test_late_straggler_outcome_ignored_while_open(self):
        breaker = make_breaker()
        trip(breaker)
        breaker.record(False)  # in-flight request finishing late
        assert breaker.state == OPEN
        assert breaker.errors.samples == 0


class TestHalfOpen:
    def test_cooldown_elapses_into_half_open(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        trip(breaker)
        clock.advance(5.0)
        breaker.allow()  # first probe admitted
        assert breaker.state == HALF_OPEN

    def test_probe_budget_limits_inflight(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        trip(breaker)
        clock.advance(5.0)
        breaker.allow()
        breaker.allow()  # both probe slots now in flight
        with pytest.raises(ServiceReject):
            breaker.allow()

    def test_clean_probes_close(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        trip(breaker)
        clock.advance(5.0)
        breaker.allow()
        breaker.record(False)
        breaker.allow()
        breaker.record(False)
        assert breaker.state == CLOSED
        # A fresh window: the old fault evidence is gone.
        assert breaker.errors.samples == 0

    def test_failed_probe_snaps_back_open(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        trip(breaker)
        clock.advance(5.0)
        breaker.allow()
        breaker.record(True)
        assert breaker.state == OPEN
        assert breaker.open_count == 2
        # The new OPEN period starts at the snap-back, not the old trip.
        with pytest.raises(ServiceReject) as exc:
            breaker.allow()
        assert exc.value.retry_after == pytest.approx(5.0)

    def test_release_frees_probe_slot_without_verdict(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        trip(breaker)
        clock.advance(5.0)
        breaker.allow()
        breaker.allow()
        breaker.release()  # a shed request frees its slot
        breaker.allow()  # slot reusable; still within probe budget
        assert breaker.state == HALF_OPEN

    def test_full_cycle_returns_to_service(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        trip(breaker)
        clock.advance(5.0)
        for _ in range(2):
            breaker.allow()
            breaker.record(False)
        breaker.allow()
        breaker.record(False)
        assert breaker.state == CLOSED


class TestTelemetryAndSnapshot:
    def test_transitions_published(self):
        clock = FakeClock()
        hub = TelemetryHub()
        breaker = make_breaker(clock=clock, telemetry=hub)
        trip(breaker)
        clock.advance(5.0)
        breaker.allow()
        breaker.record(False)
        breaker.allow()
        breaker.record(False)
        counters = hub.metrics_dict()["counters"]
        assert counters["service.breaker.transitions"] == 3
        assert counters["service.breaker.to_open"] == 1
        assert counters["service.breaker.to_half_open"] == 1
        assert counters["service.breaker.to_closed"] == 1

    def test_snapshot_shapes(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        trip(breaker)
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["retry_after_s"] == pytest.approx(5.0)
        clock.advance(5.0)
        breaker.allow()
        snap = breaker.snapshot()
        assert snap["state"] == HALF_OPEN
        assert snap["probes_remaining"] == 2
