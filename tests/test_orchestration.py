"""End-to-end orchestration: allocator -> program -> scheduler -> units.

Exercises the whole stack together the way the Polybench/CNN
experiments assume it composes: buffers placed by the allocator,
lowered into cpim programs, dispatched round-robin, with the functional
units computing the actual values on the assigned DBCs.
"""

import pytest

from repro.arch.geometry import MemoryGeometry
from repro.arch.memory import MainMemory
from repro.arch.datamovement import CopyScope, DataMover
from repro.core.addition import MultiOperandAdder
from repro.core.isa import CpimOp
from repro.sim.layout import PimAllocator, transpose_words
from repro.sim.program import HighThroughputScheduler, ProgramBuilder


@pytest.fixture()
def stack():
    memory = MainMemory(geometry=MemoryGeometry(tracks_per_dbc=32))
    allocator = PimAllocator(memory)
    return memory, allocator


class TestAllocateComputeReadback:
    def test_parallel_sums_on_allocated_regions(self, stack):
        memory, allocator = stack
        jobs = {
            "job_a": [13, 200, 7],
            "job_b": [99, 55, 1],
            "job_c": [255, 255, 255],
        }
        results = {}
        for name, words in jobs.items():
            region = allocator.allocate(name, rows=7)
            dbc = allocator.dbc_for(region)
            adder = MultiOperandAdder(dbc)
            results[name] = adder.add_words(words, 8).value
        assert results == {n: sum(w) for n, w in jobs.items()}
        # Jobs landed on distinct PIM units.
        regions = [allocator.region(n) for n in jobs]
        assert len({(r.bank, r.subarray) for r in regions}) == 3

    def test_program_schedule_covers_all_jobs(self, stack):
        _, allocator = stack
        builder = ProgramBuilder(allocator)
        builder.dot_product(4)
        schedule = HighThroughputScheduler(units=8).run(
            builder.instructions
        )
        assert len(schedule.ops) == len(builder.instructions)
        mult_ops = [
            op for op in schedule.ops
            if op.instruction.op is CpimOp.MULT
        ]
        assert len(mult_ops) == 4

    def test_data_staged_from_plain_dbc_then_computed(self, stack):
        memory, allocator = stack
        region = allocator.allocate("staged", rows=7)
        pim_dbc = allocator.dbc_for(region)
        plain_dbc = (
            memory.bank(region.bank)
            .subarray(region.subarray)
            .tile(1)  # a non-PIM tile
            .dbc(0)
        )
        # Operand words living in the plain DBC, transposed layout.
        rows = transpose_words([44, 19], 8, 32)
        plain_dbc.poke_row(5, rows[0])
        plain_dbc.poke_row(6, rows[1])
        mover = DataMover(row_buffer_width=32)
        lo, _ = pim_dbc.window
        window_base_row = pim_dbc.window_row_at(1)
        mover.copy_row(
            plain_dbc, 5, pim_dbc, window_base_row,
            scope=CopyScope.INTRA_SUBARRAY,
        )
        mover.copy_row(
            plain_dbc, 6, pim_dbc, window_base_row + 1,
            scope=CopyScope.INTRA_SUBARRAY,
        )
        # Each copy left its destination row under the left head;
        # realign so both operand rows sit inside the TR window.
        pim_dbc.align(window_base_row - 1, port_index=0)
        adder = MultiOperandAdder(pim_dbc)
        for slot in range(adder.trd):
            if slot not in (1, 2):
                pim_dbc.poke_window_slot(slot, [0] * 32)
        result = adder.run(2, result_bits=8)
        assert result.value == 44 + 19
