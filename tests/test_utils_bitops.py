"""Unit tests for repro.utils.bitops."""

import pytest

from repro.utils.bitops import (
    bits_from_int,
    bits_to_int,
    csd_encode,
    int_from_twos_complement,
    popcount,
)


class TestBitsFromInt:
    def test_little_endian(self):
        assert bits_from_int(6, 4) == [0, 1, 1, 0]

    def test_zero(self):
        assert bits_from_int(0, 3) == [0, 0, 0]

    def test_full_width(self):
        assert bits_from_int(255, 8) == [1] * 8

    def test_zero_width(self):
        assert bits_from_int(0, 0) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bits_from_int(-1, 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            bits_from_int(16, 4)


class TestBitsToInt:
    def test_roundtrip(self):
        for value in (0, 1, 5, 100, 255):
            assert bits_to_int(bits_from_int(value, 8)) == value

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    def test_empty(self):
        assert bits_to_int([]) == 0


class TestPopcount:
    def test_counts_ones(self):
        assert popcount([1, 0, 1, 1, 0]) == 3

    def test_empty(self):
        assert popcount([]) == 0


class TestCsdEncode:
    def test_seven(self):
        # 7 = 8 - 1 in canonical signed-digit form.
        assert csd_encode(7) == [-1, 0, 0, 1]

    def test_value_preserved(self):
        for value in (0, 1, 2, 3, 15, 20061, 123456):
            digits = csd_encode(value)
            assert sum(d << i for i, d in enumerate(digits)) == value

    def test_no_adjacent_nonzero(self):
        for value in range(1, 200):
            digits = csd_encode(value)
            for a, b in zip(digits, digits[1:]):
                assert not (a != 0 and b != 0), (value, digits)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            csd_encode(-5)

    def test_nonzero_digit_count_never_worse_than_binary(self):
        for value in range(1, 500):
            csd_nz = sum(1 for d in csd_encode(value) if d)
            assert csd_nz <= bin(value).count("1")


class TestTwosComplement:
    def test_decode_positive(self):
        assert int_from_twos_complement(5, 8) == 5

    def test_decode_negative(self):
        assert int_from_twos_complement(0xFF, 8) == -1
        assert int_from_twos_complement(0x80, 8) == -128
