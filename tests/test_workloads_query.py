"""Tests for the predicate-tree query engine."""

import numpy as np
import pytest

from repro import CoruscantSystem, MemoryGeometry
from repro.workloads.bitmap import BitmapDatabase
from repro.workloads.query import (
    And,
    Attr,
    Not,
    Or,
    QueryEngine,
    reference_evaluate,
)


@pytest.fixture()
def setup():
    width = 64
    rng = np.random.default_rng(11)
    db = BitmapDatabase(num_items=width)
    for name, density in (
        ("male", 0.5),
        ("week1", 0.4),
        ("week2", 0.4),
        ("week3", 0.3),
        ("premium", 0.2),
    ):
        db.add(name, (rng.random(width) < density).astype(np.uint8))
    system = CoruscantSystem(
        trd=7, geometry=MemoryGeometry(tracks_per_dbc=width)
    )
    return QueryEngine(system, db), db


class TestQueries:
    def test_simple_attr(self, setup):
        engine, db = setup
        result = engine.run(Attr("male"))
        assert result.count == int(db.bitmap("male").sum())

    def test_conjunction(self, setup):
        engine, db = setup
        q = And(Attr("male"), Attr("week1"), Attr("week2"))
        want = reference_evaluate(q, db)
        result = engine.run(q)
        assert result.count == int(want.sum())
        assert result.bits[: db.num_items] == want.tolist()

    def test_disjunction(self, setup):
        engine, db = setup
        q = Or(Attr("week1"), Attr("week2"), Attr("week3"))
        assert engine.run(q).count == int(reference_evaluate(q, db).sum())

    def test_negation(self, setup):
        engine, db = setup
        q = Not(Attr("male"))
        want = int((1 - db.bitmap("male")).sum())
        assert engine.run(q).count == want

    def test_nested_tree(self, setup):
        engine, db = setup
        q = And(
            Attr("male"),
            Or(Attr("week1"), Attr("week2")),
            Not(Attr("premium")),
        )
        assert engine.run(q).count == int(reference_evaluate(q, db).sum())

    def test_wide_and_fuses_into_one_pass(self, setup):
        engine, _ = setup
        q = And(
            Attr("male"), Attr("week1"), Attr("week2"), Attr("week3"),
            Attr("premium"),
        )
        result = engine.run(q)
        assert result.tr_passes == 1  # five operands fit one TRD-7 window

    def test_beyond_trd_chains_passes(self, setup):
        engine, db = setup
        children = [
            Attr(n)
            for n in ("male", "week1", "week2", "week3", "premium")
        ] * 2  # ten operands
        q = And(*children)
        result = engine.run(q)
        assert result.tr_passes == 2
        assert result.count == int(reference_evaluate(q, db).sum())

    def test_validation(self, setup):
        engine, _ = setup
        with pytest.raises(ValueError):
            And(Attr("male"))
        with pytest.raises(ValueError):
            Or(Attr("male"))

    def test_database_too_wide(self):
        db = BitmapDatabase(num_items=128)
        db.add_random("x", 0.5)
        system = CoruscantSystem(
            trd=7, geometry=MemoryGeometry(tracks_per_dbc=64)
        )
        with pytest.raises(ValueError):
            QueryEngine(system, db)


class TestReferenceEvaluator:
    def test_de_morgan(self, setup):
        _, db = setup
        lhs = reference_evaluate(
            Not(And(Attr("male"), Attr("week1"))), db
        )
        rhs = reference_evaluate(
            Or(Not(Attr("male")), Not(Attr("week1"))), db
        )
        assert np.array_equal(lhs, rhs)
