"""Tests for the fidelity scoreboard: registry, suite, and renderers."""

import json
import math

import pytest

from repro.obs import (
    FIDELITY_SCHEMA,
    FidelitySuite,
    PAPER_REFERENCES,
    PaperRef,
    REFERENCES_BY_NAME,
    extract_hotspots,
    record_for,
    render_html,
    render_json,
    render_markdown,
)


class TestPaperRef:
    def test_abs_tolerance(self):
        ref = PaperRef("table1", "ADD2", 3.7, 0.2, kind="abs")
        assert ref.within(3.7)
        assert ref.within(3.9)
        assert not ref.within(3.95)

    def test_rel_tolerance(self):
        ref = PaperRef("table5", "x", 1.0e-6, 0.25, kind="rel")
        assert ref.within(1.2e-6)
        assert not ref.within(1.3e-6)

    def test_exact_tolerance(self):
        ref = PaperRef("table3", "cycles", 26, 0, kind="abs")
        assert ref.within(26)
        assert not ref.within(27)

    def test_nan_measurement_is_never_within(self):
        ref = PaperRef("table1", "x", 1.0, 10.0)
        assert not ref.within(float("nan"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PaperRef("table1", "x", 1.0, 0.1, kind="fuzzy")

    def test_registry_names_are_unique_and_dotted(self):
        assert len(REFERENCES_BY_NAME) == len(PAPER_REFERENCES)
        for ref in PAPER_REFERENCES:
            assert ref.name == f"{ref.section}.{ref.metric}"

    def test_registry_covers_all_required_sections(self):
        sections = {ref.section for ref in PAPER_REFERENCES}
        assert {
            "table1", "table3", "table4", "table5",
            "fig10", "fig11", "fig12",
        } <= sections


class TestFidelityRecord:
    def test_delta_and_rel_delta(self):
        ref = PaperRef("table1", "x", 4.0, 1.0)
        record = record_for(ref, 5.0)
        assert record.delta == 1.0
        assert record.rel_delta == 0.25
        assert record.within

    def test_nan_paper_serialises_to_null(self):
        ref = PaperRef("table1", "x", float("nan"), 1.0)
        d = record_for(ref, 2.0).as_dict()
        assert d["paper"] is None
        assert d["delta"] is None
        assert d["rel_delta"] is None
        json.dumps(d)  # must be JSON-serialisable

    def test_zero_paper_has_no_rel_delta(self):
        ref = PaperRef("table1", "x", 0.0, 1.0)
        assert record_for(ref, 0.5).rel_delta is None


class TestFidelitySuite:
    @pytest.fixture(scope="class")
    def report(self):
        return FidelitySuite().run()

    def test_covers_all_default_sections(self, report):
        assert report.sections == [
            "table1", "table3", "fig10", "fig11", "fig12", "table4",
            "table5",
        ]
        assert len(report.sections) >= 5

    def test_every_record_is_within_tolerance(self, report):
        bad = [
            (r.metric, r.measured, r.paper) for r in report.out_of_tolerance
        ]
        assert not bad, f"reproduction drifted from the paper: {bad}"

    def test_document_schema(self, report):
        document = report.as_dict()
        assert document["schema"] == FIDELITY_SCHEMA
        assert document["summary"]["records"] == len(report.records)
        for section in document["sections"]:
            assert section["records"], section["section"]
            for record in section["records"]:
                assert {
                    "metric", "measured", "paper", "delta", "within",
                } <= set(record)
        json.dumps(document)  # JSON-clean end to end

    def test_hotspots_attribute_device_phases(self, report):
        ops = {row.op for row in report.hotspots}
        assert "transverse_read" in ops
        assert "shift" in ops
        shares = sum(row.cycles_share for row in report.hotspots)
        assert math.isclose(shares, 1.0, abs_tol=1e-6)
        # Sorted by cycle consumption, heaviest first.
        cycles = [row.cycles for row in report.hotspots]
        assert cycles == sorted(cycles, reverse=True)

    def test_section_subset_runs_only_those(self):
        report = FidelitySuite(sections=["table3"]).run()
        assert report.sections == ["table3"]
        assert all(r.section == "table3" for r in report.records)

    def test_fig10_fig11_share_one_polybench_run(self):
        report = FidelitySuite(sections=["fig10", "fig11"]).run()
        assert {r.section for r in report.records} == {"fig10", "fig11"}

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError):
            FidelitySuite(sections=["table99"])


class TestExtractHotspots:
    def test_empty_metrics_yield_no_rows(self):
        assert extract_hotspots({"counters": {}}) == []

    def test_shares_and_order(self):
        metrics = {
            "counters": {
                "device.shift.count": 4,
                "device.shift.cycles": 40,
                "device.shift.energy_pj": 1.0,
                "device.write.count": 2,
                "device.write.cycles": 60,
                "device.write.energy_pj": 3.0,
            }
        }
        rows = extract_hotspots(metrics)
        assert [r.op for r in rows] == ["write", "shift"]
        assert rows[0].cycles_share == 0.6
        assert rows[1].energy_share == 0.25


class TestRenderers:
    @pytest.fixture(scope="class")
    def report(self):
        return FidelitySuite().run()

    def test_markdown_scoreboard_has_required_columns(self, report):
        md = render_markdown(report)
        assert "# CORUSCANT reproduction-fidelity scoreboard" in md
        assert "| metric | measured | paper | delta | within tol |" in md
        # At least 5 paper tables/figures as sections.
        assert sum(1 for line in md.splitlines()
                   if line.startswith("## ")) >= 5
        assert "## Hotspots" in md

    def test_markdown_tables_are_well_formed(self, report):
        for line in render_markdown(report).splitlines():
            if line.startswith("|"):
                assert line.endswith("|"), line

    def test_html_is_standalone_page(self, report):
        page = render_html(report)
        assert page.startswith("<!DOCTYPE html>")
        assert page.count("<table>") >= 6
        assert page.rstrip().endswith("</html>")

    def test_json_round_trips(self, report):
        document = json.loads(render_json(report))
        assert document["schema"] == FIDELITY_SCHEMA
        assert document["summary"]["out_of_tolerance"] == 0
