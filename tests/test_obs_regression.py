"""Tests for the bench-history store and the regression detector."""

import copy
import json

import pytest

from repro.obs import (
    BenchHistory,
    HISTORY_SCHEMA,
    RegressionDetector,
    Verdict,
    load_baseline,
)


def _bench_doc(cycles=64, energy=680.0, spans=10, wall=0.002):
    return {
        "schema": "coruscant-bench-pim-ops/2",
        "repeats": 3,
        "kernels": [
            {
                "name": "mult8_trd7",
                "trd": 7,
                "repeats": 3,
                "sim_cycles": cycles,
                "sim_energy_pj": energy,
                "spans": spans,
                "wall_seconds_min": wall,
                "wall_seconds_mean": wall * 1.1,
                "wall_seconds_median": wall * 1.05,
            }
        ],
    }


class TestBenchHistory:
    def test_append_and_load_round_trip(self, tmp_path):
        history = BenchHistory(str(tmp_path / "h.jsonl"))
        assert history.load() == []
        assert history.last() is None
        history.append(_bench_doc(), meta={"recorded_unix": 123})
        history.append(_bench_doc(cycles=60))
        entries = history.load()
        assert [e["seq"] for e in entries] == [1, 2]
        assert entries[0]["schema"] == HISTORY_SCHEMA
        assert entries[0]["meta"] == {"recorded_unix": 123}
        assert history.last()["kernels"][0]["sim_cycles"] == 60
        assert len(history) == 2

    def test_corrupt_line_raises_with_location(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="h.jsonl:1"):
            BenchHistory(str(path)).load()

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(json.dumps({"schema": "bogus/9"}) + "\n")
        with pytest.raises(ValueError, match="bogus/9"):
            BenchHistory(str(path)).load()


class TestLoadBaseline:
    def test_missing_file_returns_none(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) is None

    def test_bare_bench_document(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_bench_doc(cycles=99)))
        assert load_baseline(str(path))["kernels"][0]["sim_cycles"] == 99

    def test_history_file_returns_newest_entry(self, tmp_path):
        history = BenchHistory(str(tmp_path / "h.jsonl"))
        history.append(_bench_doc(cycles=64))
        history.append(_bench_doc(cycles=32))
        assert (
            load_baseline(history.path)["kernels"][0]["sim_cycles"] == 32
        )

    def test_unrecognisable_content_raises(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_empty_file_returns_none(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        assert load_baseline(str(path)) is None


class TestRegressionDetector:
    def _verdict(self, report, metric):
        return next(
            c.verdict for c in report.comparisons if c.metric == metric
        )

    def test_identical_runs_are_unchanged(self):
        doc = _bench_doc()
        report = RegressionDetector().compare(doc, copy.deepcopy(doc))
        assert not report.has_regression
        assert report.exit_code == 0
        assert all(
            c.verdict is Verdict.UNCHANGED for c in report.comparisons
        )

    def test_cycle_increase_is_a_regression(self):
        base = _bench_doc(cycles=64)
        report = RegressionDetector().compare(_bench_doc(cycles=65), base)
        assert self._verdict(report, "sim_cycles") is Verdict.REGRESSED
        assert report.exit_code == 1

    def test_cycle_decrease_is_an_improvement(self):
        base = _bench_doc(cycles=64)
        report = RegressionDetector().compare(_bench_doc(cycles=60), base)
        assert self._verdict(report, "sim_cycles") is Verdict.IMPROVED
        assert report.exit_code == 0

    def test_energy_compared_exactly(self):
        base = _bench_doc(energy=680.0)
        report = RegressionDetector().compare(
            _bench_doc(energy=680.001), base
        )
        assert self._verdict(report, "sim_energy_pj") is Verdict.REGRESSED

    def test_span_drift_flags_either_direction(self):
        for spans in (9, 11):
            report = RegressionDetector().compare(
                _bench_doc(spans=spans), _bench_doc(spans=10)
            )
            assert self._verdict(report, "spans") is Verdict.REGRESSED

    def test_wall_noise_within_band_is_unchanged(self):
        base = _bench_doc(wall=0.002)
        report = RegressionDetector(wall_tolerance=0.25).compare(
            _bench_doc(wall=0.0024), base
        )
        assert (
            self._verdict(report, "wall_seconds_min") is Verdict.UNCHANGED
        )

    def test_wall_slowdown_beyond_band_regresses(self):
        base = _bench_doc(wall=0.002)
        report = RegressionDetector(wall_tolerance=0.25).compare(
            _bench_doc(wall=0.004), base
        )
        assert (
            self._verdict(report, "wall_seconds_min") is Verdict.REGRESSED
        )

    def test_wall_speedup_beyond_band_improves(self):
        base = _bench_doc(wall=0.004)
        report = RegressionDetector(wall_tolerance=0.25).compare(
            _bench_doc(wall=0.002), base
        )
        assert (
            self._verdict(report, "wall_seconds_min") is Verdict.IMPROVED
        )

    def test_wall_needs_min_and_median_to_agree(self):
        # min doubled but median stayed put: one noisy repeat must not
        # flip the verdict.
        base = _bench_doc(wall=0.002)
        current = _bench_doc(wall=0.004)
        current["kernels"][0]["wall_seconds_median"] = base["kernels"][0][
            "wall_seconds_median"
        ]
        report = RegressionDetector(wall_tolerance=0.25).compare(
            current, base
        )
        assert (
            self._verdict(report, "wall_seconds_min") is Verdict.UNCHANGED
        )

    def test_v1_baseline_without_median_falls_back_to_mean(self):
        base = _bench_doc(wall=0.002)
        del base["kernels"][0]["wall_seconds_median"]
        report = RegressionDetector(wall_tolerance=0.25).compare(
            _bench_doc(wall=0.004), base
        )
        assert (
            self._verdict(report, "wall_seconds_min") is Verdict.REGRESSED
        )

    def test_new_kernel_gets_new_verdict(self):
        current = _bench_doc()
        current["kernels"].append(
            dict(current["kernels"][0], name="shiny_new")
        )
        report = RegressionDetector().compare(current, _bench_doc())
        new = [c for c in report.comparisons if c.verdict is Verdict.NEW]
        assert [c.kernel for c in new] == ["shiny_new"]
        assert report.exit_code == 0

    def test_removed_kernel_fails_the_gate(self):
        base = _bench_doc()
        base["kernels"].append(dict(base["kernels"][0], name="gone"))
        report = RegressionDetector().compare(_bench_doc(), base)
        assert report.removed_kernels == ["gone"]
        assert report.has_regression

    def test_summary_and_as_dict_round_trip(self):
        report = RegressionDetector().compare(
            _bench_doc(cycles=66), _bench_doc(cycles=64)
        )
        document = report.as_dict()
        json.dumps(document)
        assert document["summary"]["has_regression"] is True
        assert document["summary"]["verdicts"]["regressed"] == 1

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            RegressionDetector(wall_tolerance=-0.1)
