"""Unit tests for the DrAcc-style in-DRAM CLA adder."""

import pytest

from repro.baselines.ambit import Ambit
from repro.baselines.dracc import DrAccAdder
from repro.baselines.elp2im import ELP2IM


class TestClaCorrectness:
    @pytest.mark.parametrize("backend_cls", [Ambit, ELP2IM])
    @pytest.mark.parametrize(
        "a,b", [(0, 0), (255, 1), (173, 219), (128, 128), (255, 255)]
    )
    def test_single_pair(self, backend_cls, a, b):
        adder = DrAccAdder(backend_cls())
        result = adder.add_packed([a], [b], 9)
        assert result.values == [a + b]

    def test_packed_blocks(self):
        adder = DrAccAdder(ELP2IM())
        lhs = [3, 100, 255, 0]
        rhs = [4, 27, 1, 0]
        result = adder.add_packed(lhs, rhs, 9)
        assert result.values == [a + b for a, b in zip(lhs, rhs)]

    def test_mod_semantics(self):
        adder = DrAccAdder(ELP2IM())
        result = adder.add_packed([255], [255], 8)
        assert result.values == [(255 + 255) % 256]

    def test_tree_sum(self):
        adder = DrAccAdder(ELP2IM())
        words = [13, 200, 7, 99, 55, 1, 0, 250]
        total, steps = adder.add_many(words, 8)
        assert total == sum(words)
        assert steps == 3  # log2(8) levels

    def test_validation(self):
        adder = DrAccAdder(ELP2IM())
        with pytest.raises(ValueError):
            adder.add_packed([1], [1, 2], 8)
        with pytest.raises(ValueError):
            adder.add_packed([256], [0], 8)
        with pytest.raises(ValueError):
            adder.add_many([], 8)


class TestClaCost:
    def test_bitwise_pass_structure(self):
        """Eq. 3 needs five bulk passes per bit (AND, XOR, XOR, AND, OR)."""
        adder = DrAccAdder(ELP2IM())
        result = adder.add_packed([7], [9], 8)
        # XOR costs 3 primitive ops on ELP2IM, AND/OR one each.
        # Per bit: AND(1) + XOR(3) + XOR(3) + AND(1) + OR(1) = 9.
        assert result.bitwise_ops == 8 * 9

    def test_ambit_slower_than_elp2im(self):
        ambit = DrAccAdder(Ambit()).add_packed([7], [9], 8)
        elp = DrAccAdder(ELP2IM()).add_packed([7], [9], 8)
        assert ambit.cycles > elp.cycles

    def test_coruscant_add_far_cheaper(self):
        """The Section IV-A comparison: 40-cycle CLA steps vs one TR walk."""
        elp = DrAccAdder(ELP2IM()).add_packed([173], [219], 8)
        # CORUSCANT's measured 8-bit add is 26 cycles (Table III); the
        # in-DRAM CLA pays an order of magnitude more per step.
        assert elp.cycles > 5 * 26


class TestClaProperty:
    def test_random_packed_adds(self):
        from hypothesis import given, settings, strategies as st

        @given(
            st.lists(st.integers(0, 255), min_size=1, max_size=6),
            st.lists(st.integers(0, 255), min_size=1, max_size=6),
        )
        @settings(max_examples=30, deadline=None)
        def check(lhs, rhs):
            n = min(len(lhs), len(rhs))
            lhs, rhs = lhs[:n], rhs[:n]
            adder = DrAccAdder(ELP2IM())
            result = adder.add_packed(lhs, rhs, 9)
            assert result.values == [a + b for a, b in zip(lhs, rhs)]

        check()
