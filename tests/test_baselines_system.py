"""Unit tests for the ISAAC and CPU baseline models."""

import pytest

from repro.baselines.cpu import CpuSystem, CpuSystemConfig
from repro.baselines.isaac import IsaacModel
from repro.energy.model import OpCounts
from repro.workloads.cnn.networks import ALEXNET, LENET5


class TestIsaac:
    def test_published_anchors(self):
        model = IsaacModel()
        assert model.fps(ALEXNET.total_macs) == pytest.approx(34.0, rel=0.05)
        assert model.fps(LENET5.total_macs) == pytest.approx(2581, rel=0.05)

    def test_latency_monotone_in_macs(self):
        model = IsaacModel()
        assert model.latency_s(10**9) > model.latency_s(10**6)

    def test_validation(self):
        with pytest.raises(ValueError):
            IsaacModel().latency_s(-1)


class TestCpuSystem:
    def test_dram_slower_than_dwm(self):
        # Section V-C: DRAM is slightly slower than DWM under load.
        dram = CpuSystem.with_dram()
        dwm = CpuSystem.with_dwm()
        ratio = dram.latency_cycles(10000) / dwm.latency_cycles(10000)
        assert 1.0 < ratio < 1.2

    def test_occupancy_components(self):
        dram = CpuSystem.with_dram()
        assert dram.bank_occupancy_cycles() == 20 + 8  # tRAS + tRP
        dwm = CpuSystem.with_dwm()
        assert dwm.bank_occupancy_cycles() == 9 + 17  # tRAS + shifts

    def test_latency_linear_in_accesses(self):
        cpu = CpuSystem.with_dwm()
        assert cpu.latency_cycles(2000) == pytest.approx(
            2 * cpu.latency_cycles(1000)
        )

    def test_queue_factor_applies(self):
        base = CpuSystem.with_dwm(CpuSystemConfig(queue_factor=1.0))
        queued = CpuSystem.with_dwm(CpuSystemConfig(queue_factor=5.0))
        assert queued.latency_cycles(100) == pytest.approx(
            5 * base.latency_cycles(100)
        )

    def test_negative_accesses_rejected(self):
        with pytest.raises(ValueError):
            CpuSystem.with_dram().latency_cycles(-1)

    def test_energy_delegates_to_table2_model(self):
        energy = CpuSystem.energy_pj(OpCounts(adds=10))
        assert energy > 10 * 111.0  # compute + movement
