"""Unit tests for the memory controller."""

import pytest

from repro.arch.controller import MemoryController
from repro.arch.geometry import MemoryGeometry
from repro.arch.memory import MainMemory
from repro.core.isa import Address, CpimInstruction, CpimOp


def make_controller(tracks=16):
    memory = MainMemory(geometry=MemoryGeometry(tracks_per_dbc=tracks))
    return MemoryController(memory)


def addr(**kwargs):
    defaults = dict(bank=0, subarray=0, tile=0, dbc=0, row=5)
    defaults.update(kwargs)
    return Address(**defaults)


class TestRegularAccess:
    def test_write_then_read(self):
        ctl = make_controller()
        bits = [1, 0] * 8
        ctl.write(addr(), bits)
        assert ctl.read(addr()) == bits

    def test_row_hit_cheaper_than_miss(self):
        ctl = make_controller()
        ctl.read(addr(row=5))
        after_first = ctl.stats.memory_cycles
        ctl.read(addr(row=5))  # hit
        hit_cost = ctl.stats.memory_cycles - after_first
        ctl.read(addr(row=9))  # miss + shifts
        miss_cost = ctl.stats.memory_cycles - after_first - hit_cost
        assert hit_cost < miss_cost

    def test_row_hit_write_charged_write_recovery_only(self):
        # Regression: the is_write branch used to precede the row-hit
        # check, so a write to the open row paid the full miss cost.
        ctl = make_controller()
        bits = [1] * 16
        ctl.write(addr(row=5), bits)  # opens row 5
        before = ctl.stats.memory_cycles
        ctl.write(addr(row=5), bits)  # hit
        hit_cost = ctl.stats.memory_cycles - before
        assert hit_cost == ctl.memory.timings.row_hit_write_cycles()

    def test_row_hit_write_cheaper_than_miss(self):
        ctl = make_controller()
        bits = [1] * 16
        ctl.write(addr(row=5), bits)
        before = ctl.stats.memory_cycles
        ctl.write(addr(row=5), bits)  # hit
        hit_cost = ctl.stats.memory_cycles - before
        ctl.write(addr(row=9), bits)  # miss + shifts
        miss_cost = ctl.stats.memory_cycles - before - hit_cost
        assert hit_cost < miss_cost

    def test_stats_counted(self):
        ctl = make_controller()
        ctl.write(addr(), [0] * 16)
        ctl.read(addr())
        assert ctl.stats.reads == 1
        assert ctl.stats.writes == 1
        assert len(ctl.stats.command_log) == 2


class TestCpimDispatch:
    def test_bulk_and(self):
        ctl = make_controller(tracks=16)
        dbc = ctl.memory.pim_dbc()
        dbc.poke_window_slot(0, [1] * 16)
        dbc.poke_window_slot(1, [1, 0] * 8)
        for slot in range(2, 7):
            dbc.poke_window_slot(slot, [1] * 16)  # AND padding preset
        instr = CpimInstruction(
            op=CpimOp.AND, blocksize=16, src=addr(row=14), dest=addr(row=0),
            operands=2,
        )
        result = ctl.execute(instr)
        assert result.bits == [1, 0] * 8
        assert ctl.stats.pim_ops == 1

    def test_add_blocks(self):
        ctl = make_controller(tracks=16)
        dbc = ctl.memory.pim_dbc()
        from repro.core.addition import MultiOperandAdder

        adder = MultiOperandAdder(dbc)
        adder.stage_words([3, 4], 8, start_track=0, zero_extend_to=8)
        adder.stage_words([10, 20], 8, start_track=8, zero_extend_to=8)
        instr = CpimInstruction(
            op=CpimOp.ADD, blocksize=8, src=addr(row=14), dest=addr(row=0),
            operands=2,
        )
        result = ctl.execute(instr)
        assert result.values == [7, 30]

    def test_non_pim_target_rejected(self):
        ctl = make_controller()
        instr = CpimInstruction(
            op=CpimOp.AND, blocksize=16, src=addr(dbc=5), dest=addr(),
            operands=2,
        )
        with pytest.raises(ValueError):
            ctl.execute(instr)

    def test_unsupported_op(self):
        ctl = make_controller()
        instr = CpimInstruction(
            op=CpimOp.MULT, blocksize=16, src=addr(), dest=addr(),
            operands=2,
        )
        with pytest.raises(NotImplementedError):
            ctl.execute(instr)


class TestReduceAndVoteDispatch:
    def test_reduce(self):
        ctl = make_controller(tracks=16)
        dbc = ctl.memory.pim_dbc()
        from repro.utils.bitops import bits_from_int

        values = [5, 9, 3]
        for slot, v in enumerate(values):
            dbc.poke_window_slot(slot, bits_from_int(v, 16))
        instr = CpimInstruction(
            op=CpimOp.REDUCE, blocksize=16, src=addr(row=14),
            dest=addr(row=0), operands=3,
        )
        result = ctl.execute(instr)
        from repro.core.reduction import CarrySaveReducer

        assert CarrySaveReducer.rows_sum(result.rows) == sum(values)

    def test_vote(self):
        ctl = make_controller(tracks=16)
        dbc = ctl.memory.pim_dbc()
        good = [1, 0, 1, 0] * 4
        bad = list(good)
        bad[2] ^= 1
        for slot, row in enumerate((good, bad, good)):
            dbc.poke_window_slot(slot, row)
        instr = CpimInstruction(
            op=CpimOp.VOTE, blocksize=16, src=addr(row=14),
            dest=addr(row=0), operands=3,
        )
        # Voting needs the Fig. 7(c) padding layout, which vote()
        # itself stages from the replica rows it is given.
        result = ctl.execute(instr)
        assert result.bits == good
