"""Unit tests for inter-DBC data movement."""

import pytest

from repro.arch.datamovement import CopyScope, DataMover
from repro.arch.dbc import DomainBlockCluster
from repro.device.parameters import DeviceParameters


def make_dbc(tracks=16, pim=True):
    return DomainBlockCluster(
        tracks=tracks,
        domains=32,
        params=DeviceParameters(trd=7),
        pim_enabled=pim,
    )


class TestCopyRow:
    def test_contents_move_exactly(self):
        src = make_dbc()
        dst = make_dbc()
        pattern = [1, 0, 1, 1, 0, 0, 1, 0] * 2
        src.poke_row(5, pattern)
        mover = DataMover(row_buffer_width=16)
        mover.copy_row(src, 5, dst, 9)
        assert dst.peek_row(9) == pattern

    def test_scope_costs_ordered(self):
        costs = {}
        for scope in CopyScope:
            src = make_dbc()
            dst = make_dbc()
            src.poke_row(5, [1] * 16)
            mover = DataMover(row_buffer_width=16)
            costs[scope] = mover.copy_row(src, 5, dst, 5, scope=scope).cycles
        assert (
            costs[CopyScope.INTRA_TILE]
            < costs[CopyScope.INTRA_SUBARRAY]
            < costs[CopyScope.INTER_BANK]
        )

    def test_alignment_shifts_counted(self):
        src = make_dbc()
        dst = make_dbc()
        mover = DataMover(row_buffer_width=16)
        result = mover.copy_row(src, 2, dst, 20)
        assert result.shifts > 0

    def test_width_mismatch_rejected(self):
        mover = DataMover(row_buffer_width=32)
        with pytest.raises(ValueError):
            mover.copy_row(make_dbc(tracks=16), 0, make_dbc(tracks=8), 0)

    def test_buffer_too_narrow(self):
        mover = DataMover(row_buffer_width=8)
        with pytest.raises(ValueError):
            mover.copy_row(make_dbc(tracks=16), 0, make_dbc(tracks=16), 0)

    def test_copy_between_pim_and_plain(self):
        """The Section III-A flow: stage data from a plain DBC into PIM."""
        plain = make_dbc(pim=False)
        pim = make_dbc(pim=True)
        plain.poke_row(3, [0, 1] * 8)
        mover = DataMover(row_buffer_width=16)
        mover.copy_row(plain, 3, pim, 15)
        assert pim.peek_row(15) == [0, 1] * 8


class TestBroadcast:
    def test_broadcast_to_many(self):
        src = make_dbc()
        targets = [make_dbc() for _ in range(3)]
        src.poke_row(7, [1, 1, 0, 0] * 4)
        mover = DataMover(row_buffer_width=16)
        mover.broadcast_row(src, 7, targets, 2)
        for dst in targets:
            assert dst.peek_row(2) == [1, 1, 0, 0] * 4

    def test_broadcast_cheaper_than_copies(self):
        src1 = make_dbc()
        src1.poke_row(7, [1] * 16)
        targets = [make_dbc() for _ in range(4)]
        m_bcast = DataMover(row_buffer_width=16)
        bcast = m_bcast.broadcast_row(src1, 7, targets, 7)

        src2 = make_dbc()
        src2.poke_row(7, [1] * 16)
        m_copy = DataMover(row_buffer_width=16)
        copies = 0
        for dst in [make_dbc() for _ in range(4)]:
            copies += m_copy.copy_row(src2, 7, dst, 7).cycles
        assert bcast < copies

    def test_stats_accumulate(self):
        src = make_dbc()
        dst = make_dbc()
        mover = DataMover(row_buffer_width=16)
        mover.copy_row(src, 1, dst, 1)
        mover.copy_row(src, 2, dst, 2)
        assert mover.copies == 2
        assert mover.total_cycles > 0
