"""Tests for the adaptive protection ladder (circuit breaker)."""

import pytest

from repro.resilience.breaker import (
    AdaptiveProtection,
    BreakerConfig,
    ProtectionLevel,
)

KEY = (0, 0, 0, 0)


def make_breaker(**overrides):
    defaults = dict(
        window=8,
        min_samples=4,
        escalate_threshold=0.5,
        cooldown=4,
        probe_ops=2,
        initial=ProtectionLevel.BARE,
    )
    defaults.update(overrides)
    return AdaptiveProtection(BreakerConfig(**defaults))


def feed(breaker, outcomes, key=KEY):
    for faulty in outcomes:
        breaker.record(key, faulty)


class TestConfigValidation:
    def test_defaults_valid(self):
        config = BreakerConfig()
        assert config.initial is ProtectionLevel.VOTED

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"min_samples": 0},
            {"min_samples": 9, "window": 8},
            {"escalate_threshold": 0.0},
            {"escalate_threshold": 1.5},
            {"cooldown": 0},
            {"probe_ops": 0},
        ],
    )
    def test_bad_thresholds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BreakerConfig(**kwargs)


class TestEscalation:
    def test_new_dbc_starts_at_initial(self):
        assert make_breaker().level(KEY) is ProtectionLevel.BARE
        assert (
            make_breaker(initial=ProtectionLevel.NMR).level(KEY)
            is ProtectionLevel.NMR
        )

    def test_sustained_faults_climb_one_rung(self):
        breaker = make_breaker()
        feed(breaker, [True] * 4)
        assert breaker.level(KEY) is ProtectionLevel.VOTED
        state = breaker.state(KEY)
        assert state.escalations == 1
        assert not state.window  # history resets at the new rung

    def test_rate_below_threshold_holds(self):
        breaker = make_breaker()
        feed(breaker, [True, False, False, False] * 4)  # 25% < 50%
        assert breaker.level(KEY) is ProtectionLevel.BARE

    def test_too_few_samples_never_escalate(self):
        breaker = make_breaker()
        feed(breaker, [True] * 3)  # min_samples is 4
        assert breaker.level(KEY) is ProtectionLevel.BARE

    def test_ladder_tops_out_at_nmr(self):
        breaker = make_breaker()
        feed(breaker, [True] * 50)
        assert breaker.level(KEY) is ProtectionLevel.NMR
        assert breaker.state(KEY).escalations == 2

    def test_dbcs_are_tracked_independently(self):
        breaker = make_breaker()
        other = (0, 0, 0, 1)
        feed(breaker, [True] * 4)
        assert breaker.level(KEY) is ProtectionLevel.VOTED
        assert breaker.level(other) is ProtectionLevel.BARE


class TestHalfOpenProbe:
    def escalated(self):
        """A breaker driven to VOTED and then fed a clean cooldown."""
        breaker = make_breaker()
        feed(breaker, [True] * 4)
        feed(breaker, [False] * 4)  # cooldown reached -> probing
        return breaker

    def test_cooldown_opens_probe_at_lower_rung(self):
        breaker = self.escalated()
        state = breaker.state(KEY)
        assert state.probing
        assert state.probes == 1
        assert state.level is ProtectionLevel.VOTED
        assert breaker.level(KEY) is ProtectionLevel.BARE  # trial rung

    def test_clean_probe_commits_deescalation(self):
        breaker = self.escalated()
        feed(breaker, [False] * 2)  # probe_ops clean ops
        state = breaker.state(KEY)
        assert not state.probing
        assert state.level is ProtectionLevel.BARE
        assert state.deescalations == 1

    def test_faulty_probe_snaps_back(self):
        breaker = self.escalated()
        feed(breaker, [False, True])
        state = breaker.state(KEY)
        assert not state.probing
        assert state.level is ProtectionLevel.VOTED
        assert state.probe_failures == 1
        assert state.deescalations == 0
        # The clean streak restarts: no immediate re-probe.
        breaker.record(KEY, False)
        assert not breaker.state(KEY).probing

    def test_bare_dbc_never_probes(self):
        breaker = make_breaker()
        feed(breaker, [False] * 20)
        assert not breaker.state(KEY).probing
        assert breaker.level(KEY) is ProtectionLevel.BARE


class TestReporting:
    def test_transitions_log_full_cycle(self):
        breaker = make_breaker()
        feed(breaker, [True] * 4 + [False] * 6)
        moves = [(src, dst) for _, _, src, dst in breaker.transitions]
        assert moves == [("BARE", "VOTED"), ("VOTED", "BARE")]

    def test_summary_aggregates_counters(self):
        breaker = make_breaker()
        feed(breaker, [True] * 4)
        feed(breaker, [True] * 4, key=(0, 0, 0, 1))
        summary = breaker.summary()
        assert summary["escalations"] == 2
        assert summary["deescalations"] == 0
        assert set(summary["levels"].values()) == {"VOTED"}
        assert len(summary["transitions"]) == 2

    def test_serialize_restore_roundtrip(self):
        breaker = make_breaker()
        feed(breaker, [True] * 4 + [False] * 5)  # mid-probe state
        saved = breaker.serialize()
        clone = make_breaker()
        clone.restore(saved)
        assert clone.serialize() == saved
        assert clone.state(KEY).probing == breaker.state(KEY).probing
        # The clone continues exactly where the original would.
        assert clone.record(KEY, False) == breaker.record(KEY, False)
        assert clone.level(KEY) is breaker.level(KEY)
