"""Unit tests for the carry-save 7->3 reduction."""

import pytest

from repro.arch.dbc import DomainBlockCluster
from repro.core.reduction import CarrySaveReducer
from repro.device.parameters import DeviceParameters
from repro.utils.bitops import bits_from_int


def make_reducer(tracks=32, trd=7):
    dbc = DomainBlockCluster(
        tracks=tracks, domains=32, params=DeviceParameters(trd=trd)
    )
    return CarrySaveReducer(dbc), dbc


def word_rows(values, width):
    return [bits_from_int(v, width) for v in values]


class TestReduceOnce:
    def test_sum_preserved_7_rows(self):
        reducer, _ = make_reducer()
        values = [100, 200, 50, 75, 3, 255, 128]
        rows = word_rows(values, 32)
        result = reducer.reduce_once(rows)
        assert len(result.rows) == 3
        assert reducer.rows_sum(result.rows) == sum(values)

    def test_sum_preserved_fewer_rows(self):
        reducer, _ = make_reducer()
        for k in (2, 3, 4, 5, 6):
            values = list(range(1, k + 1))
            result = reducer.reduce_once(word_rows(values, 32))
            assert reducer.rows_sum(result.rows) == sum(values)

    def test_trd3_produces_two_rows(self):
        reducer, _ = make_reducer(trd=3)
        values = [5, 9, 3]
        result = reducer.reduce_once(word_rows(values, 32))
        assert len(result.rows) == 2
        assert reducer.rows_sum(result.rows) == sum(values)

    def test_cycle_cost_is_tr_plus_writes(self):
        reducer, dbc = make_reducer()
        before = dbc.stats.cycles
        reducer.reduce_once(word_rows([1, 2, 3], 32))
        # 1 TR + 3 row writes = the paper's 4-cycle reduction step.
        assert dbc.stats.cycles - before == 4

    def test_trd3_cycle_cost(self):
        reducer, dbc = make_reducer(trd=3)
        before = dbc.stats.cycles
        reducer.reduce_once(word_rows([1, 2, 3], 32))
        assert dbc.stats.cycles - before == 3

    def test_overflow_detected(self):
        reducer, _ = make_reducer(tracks=4)
        rows = word_rows([15, 15, 15], 4)  # carries fall off track 3
        with pytest.raises(OverflowError):
            reducer.reduce_once(rows)

    def test_row_count_validation(self):
        reducer, _ = make_reducer()
        with pytest.raises(ValueError):
            reducer.reduce_once(word_rows([1], 32))
        with pytest.raises(ValueError):
            reducer.reduce_once(word_rows(list(range(8)), 32))


class TestReduceTo:
    def test_converges_to_adder_limit(self):
        reducer, _ = make_reducer()
        values = list(range(1, 17))  # 16 rows
        result = reducer.reduce_to(word_rows(values, 32))
        assert len(result.rows) <= 5
        assert reducer.rows_sum(result.rows) == sum(values)

    def test_trd3_converges(self):
        reducer, _ = make_reducer(trd=3)
        values = list(range(1, 9))
        result = reducer.reduce_to(word_rows(values, 32))
        assert len(result.rows) <= 2
        assert reducer.rows_sum(result.rows) == sum(values)

    def test_rounds_counted(self):
        reducer, _ = make_reducer()
        result = reducer.reduce_to(word_rows(list(range(1, 8)), 32))
        assert result.rounds == 1

    def test_already_small_enough(self):
        reducer, _ = make_reducer()
        rows = word_rows([1, 2, 3], 32)
        result = reducer.reduce_to(rows)
        assert result.rounds == 0
        assert reducer.rows_sum(result.rows) == 6

    def test_impossible_target_rejected(self):
        reducer, _ = make_reducer()
        with pytest.raises(ValueError):
            reducer.reduce_to(word_rows([1, 2, 3, 4], 32), target=1)
