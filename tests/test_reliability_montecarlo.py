"""Tests for the Monte Carlo fault-injection campaigns."""

import pytest

from repro.reliability.montecarlo import FaultCampaign, MonteCarloResult


class TestCampaigns:
    def test_additions_err_at_inflated_rate(self):
        campaign = FaultCampaign(fault_rate=0.05, seed=1)
        result = campaign.run_additions(trials=150)
        predicted = 1 - (1 - 0.05) ** 8
        assert result.error_rate == pytest.approx(predicted, rel=0.5)

    def test_multiplies_err_more_than_adds(self):
        adds = FaultCampaign(fault_rate=0.01, seed=2).run_additions(120)
        mults = FaultCampaign(fault_rate=0.01, seed=2).run_multiplies(120)
        assert mults.error_rate >= adds.error_rate

    def test_tmr_suppresses_errors(self):
        plain = FaultCampaign(fault_rate=0.02, seed=3).run_additions(100)
        tmr = FaultCampaign(fault_rate=0.02, seed=3).run_tmr_additions(100)
        assert tmr.error_rate < plain.error_rate

    def test_zero_errors_without_faults_impossible(self):
        # fault_rate must be > 0 by construction.
        with pytest.raises(ValueError):
            FaultCampaign(fault_rate=0.0)

    def test_trd3_campaign(self):
        result = FaultCampaign(trd=3, fault_rate=0.05, seed=4).run_additions(60)
        assert 0.0 <= result.error_rate <= 1.0


class TestExtrapolation:
    def test_linear_scaling(self):
        result = MonteCarloResult(trials=1000, errors=80, injected_rate=0.01)
        extrapolated = result.extrapolate(target_rate=1e-6, trs_per_op=8)
        assert extrapolated == pytest.approx(0.08 * 1e-4)

    def test_zero_rate_rejected(self):
        result = MonteCarloResult(trials=10, errors=1, injected_rate=0.0)
        with pytest.raises(ValueError):
            result.extrapolate(1e-6, 8)

    def test_empty_campaign(self):
        assert MonteCarloResult(0, 0, 0.01).error_rate == 0.0
