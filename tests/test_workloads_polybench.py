"""Unit tests for the Polybench kernel models."""

import pytest

from repro.workloads.polybench import (
    POLYBENCH_SUITE,
    PolybenchKernel,
    kernel_by_name,
)
from repro.workloads.traces import AccessKind


class TestSuite:
    def test_contains_paper_range(self):
        # Section V-C: "from 2mm ... to gemm".
        names = {k.name for k in POLYBENCH_SUITE}
        assert {"2mm", "3mm", "gemm", "atax", "mvt", "syrk"} <= names

    def test_lookup(self):
        assert kernel_by_name("gemm").name == "gemm"
        with pytest.raises(KeyError):
            kernel_by_name("nonexistent")

    def test_all_profiles_positive(self):
        for kernel in POLYBENCH_SUITE:
            p = kernel.profile()
            assert p.adds > 0 and p.mults > 0
            assert p.loads > 0 and p.stores > 0


class TestOpCounts:
    def test_gemm_counts_scale_cubically(self):
        small = kernel_by_name("gemm").with_dims(ni=10, nj=10, nk=10)
        large = kernel_by_name("gemm").with_dims(ni=20, nj=20, nk=20)
        ratio = large.profile().mults / small.profile().mults
        assert 7 <= ratio <= 9  # ~8x for doubled dimensions

    def test_gemm_mults_formula(self):
        # Canonical nest: C[i][j] *= beta; C[i][j] += alpha*A[i][k]*B[k][j].
        k = kernel_by_name("gemm").with_dims(ni=4, nj=5, nk=6)
        p = k.profile()
        assert p.mults == 2 * 4 * 5 * 6 + 4 * 5
        assert p.adds == 4 * 5 * 6

    def test_2mm_heavier_than_gemm(self):
        two = kernel_by_name("2mm").with_dims(ni=10, nj=10, nk=10, nl=10)
        one = kernel_by_name("gemm").with_dims(ni=10, nj=10, nk=10)
        assert two.profile().mults > 1.4 * one.profile().mults


class TestReferences:
    def test_gemm_reference_shape(self):
        k = kernel_by_name("gemm").with_dims(ni=8, nj=9, nk=10)
        assert k.reference().shape == (8, 9)

    def test_reference_deterministic(self):
        k = kernel_by_name("gemm").with_dims(ni=4, nj=4, nk=4)
        import numpy as np

        assert np.allclose(k.reference(seed=1), k.reference(seed=1))

    def test_missing_reference_raises(self):
        with pytest.raises(NotImplementedError):
            kernel_by_name("bicg").reference()


class TestTraceSynthesis:
    def test_trace_mix_matches_profile(self):
        k = kernel_by_name("gemm").with_dims(ni=8, nj=8, nk=8)
        p = k.profile()
        trace = k.synthesize_trace(max_entries=10**9)
        assert trace.pim_adds == p.adds
        assert trace.pim_mults == p.mults
        assert trace.loads == p.loads

    def test_trace_capped(self):
        k = kernel_by_name("gemm")
        trace = k.synthesize_trace(max_entries=1000)
        assert len(trace) <= 1100  # rounding slack

    def test_trace_proportions_preserved(self):
        k = kernel_by_name("gemm")
        p = k.profile()
        trace = k.synthesize_trace(max_entries=10000)
        got_ratio = trace.pim_mults / max(1, trace.pim_adds)
        want_ratio = p.mults / p.adds
        assert got_ratio == pytest.approx(want_ratio, rel=0.05)

    def test_entries_are_classified(self):
        k = kernel_by_name("mvt")
        trace = k.synthesize_trace(max_entries=100)
        kinds = {e.kind for e in trace}
        assert AccessKind.PIM_ADD in kinds
