"""Unit tests for the max() subroutine with transverse writes."""

import pytest

from repro.arch.dbc import DomainBlockCluster
from repro.core.maxpool import MaxUnit
from repro.device.parameters import DeviceParameters


def make_unit(tracks=16, trd=7, overhead=None):
    dbc = DomainBlockCluster(
        tracks=tracks,
        domains=32,
        params=DeviceParameters(trd=trd),
        overhead=overhead,
    )
    return MaxUnit(dbc), dbc


class TestCorrectness:
    @pytest.mark.parametrize(
        "words",
        [
            [12, 250, 99, 250, 3],
            [0, 0, 0],
            [255],
            [1, 2, 3, 4, 5, 6, 7],
            [128, 127],
            [200, 200, 200],
        ],
    )
    def test_finds_maximum(self, words):
        unit, _ = make_unit()
        assert unit.run(words, 8).value == max(words)

    def test_ties_are_fine(self):
        unit, _ = make_unit()
        result = unit.run([77, 77, 3], 8)
        assert result.value == 77
        assert result.survivors >= 2

    def test_trd4_paper_figure_example(self):
        # Fig. 8 runs the subroutine for TRD = 4.
        unit, _ = make_unit(trd=5)
        assert unit.run([0b0110, 0b1010, 0b1011, 0b0111], 4).value == 0b1011

    def test_wider_words(self):
        unit, _ = make_unit(tracks=16)
        assert unit.run([40000, 39999, 65535], 16).value == 65535

    def test_losers_are_zeroed(self):
        unit, dbc = make_unit()
        unit.run([5, 200, 9], 8)
        nonzero_slots = [
            slot
            for slot in range(7)
            if any(dbc.peek_window_slot(slot))
        ]
        assert len(nonzero_slots) == 1


class TestCycleModel:
    def test_tw_cycles(self):
        unit, _ = make_unit()
        result = unit.run([1, 2, 3], 8)
        # Per bit: 1 TR + TRD x (read + TW); plus the final TR readout.
        assert result.cycles == 8 * (1 + 2 * 7) + 8

    def test_tw_saves_cycles(self):
        unit_tw, _ = make_unit(overhead=(11, 80))
        with_tw = unit_tw.run([9, 200, 41], 8).cycles
        unit_no, _ = make_unit(overhead=(11, 80))
        without = unit_no.run(
            [9, 200, 41], 8, use_transverse_write=False
        ).cycles
        saving = 1 - with_tw / without
        # The paper reports a 28.5% reduction for TRD = 7.
        assert 0.25 <= saving <= 0.35

    def test_no_tw_needs_overhead(self):
        unit, _ = make_unit()  # default overhead too small
        with pytest.raises(ValueError):
            unit.run([1, 2], 8, use_transverse_write=False)

    def test_cycles_data_independent(self):
        a, _ = make_unit()
        b, _ = make_unit()
        assert a.run([0, 0, 0], 8).cycles == b.run([255, 254, 1], 8).cycles


class TestValidation:
    def test_too_many_words(self):
        unit, _ = make_unit()
        with pytest.raises(ValueError):
            unit.stage_words(list(range(8)), 8)

    def test_word_too_wide(self):
        unit, _ = make_unit()
        with pytest.raises(ValueError):
            unit.stage_words([256], 8)

    def test_requires_pim_dbc(self):
        plain = DomainBlockCluster(tracks=4, domains=32, pim_enabled=False)
        with pytest.raises(ValueError):
            MaxUnit(plain)
