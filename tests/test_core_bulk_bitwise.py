"""Unit tests for multi-operand bulk-bitwise operations on a DBC."""

import pytest

from repro.arch.dbc import DomainBlockCluster
from repro.core.bulk_bitwise import BulkBitwiseUnit
from repro.core.pim_logic import BulkOp
from repro.device.parameters import DeviceParameters


def make_unit(tracks=8, trd=7):
    dbc = DomainBlockCluster(
        tracks=tracks, domains=32, params=DeviceParameters(trd=trd)
    )
    return BulkBitwiseUnit(dbc), dbc


def rows(*patterns):
    return [list(p) for p in patterns]


class TestBulkOps:
    def test_three_operand_and(self):
        unit, _ = make_unit(tracks=4)
        ops = rows([1, 1, 1, 0], [1, 1, 0, 0], [1, 0, 1, 0])
        unit.stage_operands(BulkOp.AND, ops)
        assert unit.execute(BulkOp.AND, 3).bits == [1, 0, 0, 0]

    def test_seven_operand_or(self):
        unit, _ = make_unit(tracks=4)
        ops = [[0, 0, 0, 0] for _ in range(7)]
        ops[4][2] = 1
        unit.stage_operands(BulkOp.OR, ops)
        assert unit.execute(BulkOp.OR, 7).bits == [0, 0, 1, 0]

    def test_xor_parity(self):
        unit, _ = make_unit(tracks=4)
        ops = rows([1, 1, 0, 0], [1, 0, 1, 0], [1, 0, 0, 0])
        unit.stage_operands(BulkOp.XOR, ops)
        assert unit.execute(BulkOp.XOR, 3).bits == [1, 1, 1, 0]

    def test_not(self):
        unit, _ = make_unit(tracks=4)
        unit.stage_operands(BulkOp.NOT, rows([1, 0, 1, 0]))
        assert unit.execute(BulkOp.NOT, 1).bits == [0, 1, 0, 1]

    def test_nand_padding(self):
        unit, _ = make_unit(tracks=2)
        unit.stage_operands(BulkOp.NAND, rows([1, 1], [1, 0]))
        assert unit.execute(BulkOp.NAND, 2).bits == [0, 1]

    def test_execute_costs_one_tr_cycle(self):
        unit, dbc = make_unit(tracks=4)
        unit.stage_operands(BulkOp.OR, rows([1, 0, 0, 0], [0, 1, 0, 0]))
        result = unit.execute(BulkOp.OR, 2)
        assert result.cycles == 1

    def test_writeback_costs_extra_cycle(self):
        unit, dbc = make_unit(tracks=4)
        unit.stage_operands(BulkOp.OR, rows([1, 0, 0, 0], [0, 1, 0, 0]))
        result = unit.execute(BulkOp.OR, 2, writeback_slot=0)
        assert result.cycles == 2
        assert dbc.peek_window_slot(0) == [1, 1, 0, 0]

    def test_levels_reported(self):
        unit, _ = make_unit(tracks=4)
        unit.stage_operands(BulkOp.OR, rows([1, 1, 0, 0], [1, 0, 0, 0]))
        assert unit.execute(BulkOp.OR, 2).levels == [2, 1, 0, 0]


class TestStaging:
    def test_costed_staging_cycles(self):
        unit, dbc = make_unit(tracks=4)
        cycles = unit.write_operands(
            BulkOp.OR, rows([1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 1, 0])
        )
        # k writes + k-1 shifts.
        assert cycles == 5
        assert unit.execute(BulkOp.OR, 3).bits == [1, 1, 1, 0]

    def test_operand_validation(self):
        unit, _ = make_unit(tracks=4)
        with pytest.raises(ValueError):
            unit.stage_operands(BulkOp.OR, [])
        with pytest.raises(ValueError):
            unit.stage_operands(BulkOp.OR, rows([1, 0]))  # wrong width

    def test_too_many_operands(self):
        unit, _ = make_unit(tracks=4)
        with pytest.raises(ValueError):
            unit.stage_operands(BulkOp.OR, [[0, 0, 0, 0]] * 8)

    def test_requires_pim_dbc(self):
        plain = DomainBlockCluster(tracks=4, domains=32, pim_enabled=False)
        with pytest.raises(ValueError):
            BulkBitwiseUnit(plain)


class TestSmallTrd:
    def test_trd3_two_operand_and(self):
        unit, _ = make_unit(tracks=4, trd=3)
        unit.stage_operands(BulkOp.AND, rows([1, 1, 0, 0], [1, 0, 1, 0]))
        assert unit.execute(BulkOp.AND, 2).bits == [1, 0, 0, 0]

    def test_trd3_three_operand_xor(self):
        unit, _ = make_unit(tracks=4, trd=3)
        ops = rows([1, 1, 0, 0], [1, 0, 1, 0], [1, 1, 1, 0])
        unit.stage_operands(BulkOp.XOR, ops)
        assert unit.execute(BulkOp.XOR, 3).bits == [1, 0, 0, 0]
