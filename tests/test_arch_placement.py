"""Tests for shift-aware data placement."""

import pytest

from repro.arch.placement import (
    expected_shifts,
    identity_placement,
    optimize_placement,
    overhead_for_ports,
    placement_improvement,
    shift_distance,
)


class TestShiftDistance:
    def test_nearest_port(self):
        assert shift_distance(10, (14, 20)) == 4
        assert shift_distance(17, (14, 20)) == 3
        assert shift_distance(14, (14, 20)) == 0


class TestOptimizer:
    def test_hottest_row_at_port(self):
        freq = [1.0] * 32
        freq[5] = 100.0
        placement = optimize_placement(freq, (14, 20))
        assert shift_distance(placement.physical(5), (14, 20)) == 0

    def test_never_worse_than_identity(self):
        import random

        rng = random.Random(3)
        for _ in range(20):
            freq = [rng.random() for _ in range(32)]
            assert placement_improvement(freq, (14, 20)) >= 1.0

    def test_skewed_access_improves_a_lot(self):
        # Zipf-ish: a few rows take most accesses.
        freq = [1.0 / (r + 1) for r in range(32)]
        assert placement_improvement(freq, (14, 20)) > 1.3

    def test_uniform_access_no_gain(self):
        freq = [1.0] * 32
        assert placement_improvement(freq, (14, 20)) == pytest.approx(
            1.0, abs=0.01
        )

    def test_mapping_is_permutation(self):
        freq = [float(r) for r in range(32)]
        placement = optimize_placement(freq, (14, 20))
        assert sorted(placement.mapping.values()) == list(range(32))

    def test_validation(self):
        with pytest.raises(ValueError):
            optimize_placement([], (0,))
        with pytest.raises(ValueError):
            optimize_placement([1.0] * 8, (10,))
        placement = identity_placement(4, (0,))
        with pytest.raises(ValueError):
            expected_shifts(placement, [0.0] * 4)
        with pytest.raises(KeyError):
            placement.physical(7)


class TestOverheadAccounting:
    def test_paper_numbers(self):
        # Section III-A: TR-constrained ports cost 25 overhead domains;
        # a single central port costs 2Y-1 - Y = 31.
        assert overhead_for_ports(32, (14, 20)) == 25
        assert overhead_for_ports(32, (31,)) == 31

    def test_latency_optimal_two_ports_cheaper(self):
        assert overhead_for_ports(32, (8, 24)) < overhead_for_ports(
            32, (14, 20)
        )
