"""Unit tests for the crash-durable request journal.

The contract under test: every append is durable and torn-write
scoped, recovery tolerates a corrupt final record, acks answer
duplicates with the original body, and disk failure degrades into
counters instead of reaching the request path.
"""

import json
import os

from repro.chaos import hooks
from repro.chaos.faults import ChaosInjector, FaultEvent
from repro.service.journal import JOURNAL_SCHEMA, RequestJournal


def make(tmp_path, name="journal.jsonl"):
    return RequestJournal(str(tmp_path / name))


class TestJournalBasics:
    def test_intent_then_ack_round_trip(self, tmp_path):
        journal = make(tmp_path)
        journal.record_intent("k1", "add", {"payload": {"words": [1]}})
        assert journal.has_intent("k1")
        assert journal.get_ack("k1") is None
        assert [p["key"] for p in journal.pending()] == ["k1"]

        journal.record_ack("k1", 200, {"status": "ok", "result": 7})
        assert journal.pending() == []
        ack = journal.get_ack("k1")
        assert ack == {
            "http_status": 200,
            "body": {"status": "ok", "result": 7},
        }
        journal.close()

    def test_pending_preserves_acceptance_order(self, tmp_path):
        journal = make(tmp_path)
        for key in ("b", "a", "c"):
            journal.record_intent(key, "add", {})
        journal.record_ack("a", 200, {})
        assert [p["key"] for p in journal.pending()] == ["b", "c"]
        journal.close()

    def test_records_carry_schema(self, tmp_path):
        journal = make(tmp_path)
        journal.record_intent("k", "add", {})
        journal.record_ack("k", 200, {})
        journal.close()
        lines = [
            json.loads(line)
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        assert [r["type"] for r in lines] == ["intent", "ack"]
        assert all(r["schema"] == JOURNAL_SCHEMA for r in lines)


class TestJournalRecovery:
    def test_restart_recovers_state(self, tmp_path):
        journal = make(tmp_path)
        journal.record_intent("done", "add", {"payload": 1})
        journal.record_ack("done", 200, {"status": "ok"})
        journal.record_intent("lost", "multiply", {"payload": 2})
        journal.close()

        recovered = make(tmp_path)
        assert recovered.get_ack("done")["body"] == {"status": "ok"}
        assert [p["key"] for p in recovered.pending()] == ["lost"]
        assert recovered.pending()[0]["kernel"] == "multiply"
        recovered.close()

    def test_torn_final_record_is_skipped_not_fatal(self, tmp_path):
        journal = make(tmp_path)
        journal.record_intent("ok", "add", {})
        journal.record_ack("ok", 200, {})
        journal.close()
        path = tmp_path / "journal.jsonl"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "coruscant-journal/1", "type": "ack"')

        recovered = make(tmp_path)
        assert recovered.torn_records == 1
        assert recovered.get_ack("ok") is not None
        recovered.close()

    def test_ack_authoritative_without_intent(self, tmp_path):
        # The intent line was the torn one; the ack must still dedup.
        path = tmp_path / "journal.jsonl"
        ack = {
            "schema": JOURNAL_SCHEMA,
            "type": "ack",
            "key": "orphan",
            "http_status": 200,
            "body": {"status": "ok"},
        }
        path.write_text("{garbage\n" + json.dumps(ack) + "\n")
        journal = make(tmp_path)
        assert journal.torn_records == 1
        assert journal.get_ack("orphan")["http_status"] == 200
        assert journal.pending() == []
        journal.close()


class TestJournalFaults:
    def run_with_chaos(self, timeline, body):
        injector = ChaosInjector(timeline)
        injector.advance(0)
        hooks.activate(injector)
        try:
            body(injector)
        finally:
            hooks.deactivate()
        return injector

    def test_torn_ack_forces_replay_on_restart(self, tmp_path):
        journal = make(tmp_path)

        def scenario(_injector):
            journal.record_intent("k", "add", {"payload": 5})
            journal.record_ack("k", 200, {"status": "ok"})

        self.run_with_chaos(
            [FaultEvent(op=0, kind="torn-wal", param=0.5)], scenario
        )
        assert journal.torn_writes == 1
        # In-memory state is unaffected for the running process…
        assert journal.get_ack("k") is not None
        journal.close()
        # …but the restarted journal sees a torn ack and replays.
        recovered = make(tmp_path)
        assert recovered.torn_records == 1
        assert recovered.get_ack("k") is None
        assert [p["key"] for p in recovered.pending()] == ["k"]
        recovered.close()

    def test_io_error_degrades_into_counter(self, tmp_path):
        journal = make(tmp_path)

        def scenario(_injector):
            journal.record_intent("k", "add", {})

        self.run_with_chaos(
            [FaultEvent(op=0, kind="wal-io-error", param=0.0)], scenario
        )
        assert journal.write_errors == 1
        assert journal.has_intent("k")  # in-memory state advanced
        journal.close()
        recovered = make(tmp_path)
        assert not recovered.has_intent("k")  # disk never got it
        recovered.close()

    def test_suppressed_ack_keeps_intent_pending_on_disk(self, tmp_path):
        journal = make(tmp_path)

        def scenario(_injector):
            journal.record_intent("k", "add", {})
            journal.record_ack("k", 200, {"status": "ok"})

        self.run_with_chaos(
            [FaultEvent(op=0, kind="ack-suppress", param=0.0)], scenario
        )
        assert journal.suppressed_acks == 1
        assert journal.get_ack("k") is not None
        journal.close()
        recovered = make(tmp_path)
        assert recovered.get_ack("k") is None
        assert [p["key"] for p in recovered.pending()] == ["k"]
        recovered.close()


class TestJournalCompaction:
    def test_compact_drops_acked_intents_keeps_history(self, tmp_path):
        journal = make(tmp_path)
        for i in range(5):
            journal.record_intent(f"k{i}", "add", {"i": i})
        for i in range(3):
            journal.record_ack(f"k{i}", 200, {"i": i})
        journal.compact()
        # Live state unchanged through the rewrite.
        assert sorted(p["key"] for p in journal.pending()) == ["k3", "k4"]
        assert journal.get_ack("k2")["body"] == {"i": 2}
        # Appends still work on the swapped file handle.
        journal.record_ack("k3", 200, {"i": 3})
        journal.close()

        recovered = make(tmp_path)
        assert [p["key"] for p in recovered.pending()] == ["k4"]
        assert recovered.get_ack("k0") is not None
        assert recovered.get_ack("k3") is not None
        recovered.close()
        # Acked intents dropped by the rewrite: 2 pending intents +
        # 3 acks survive the compact, then one more ack is appended.
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert len(lines) == 6
        assert not os.path.exists(str(tmp_path / "journal.jsonl.tmp"))
