"""Unit tests for the energy and area models."""

import pytest

from repro.energy.area import AreaModel, PimDesign
from repro.energy.model import OpCounts, SystemEnergyModel
from repro.energy.params import (
    CORUSCANT_TABLE3,
    coruscant_add_energy_pj,
    coruscant_reduction_energy_pj,
)


class TestAreaModel:
    def test_table1_reproduced(self):
        # Table I: 3.7 / 9.2 / 9.4 / 10.0 percent.
        table = AreaModel().table1()
        assert table["ADD2"] == pytest.approx(3.7, abs=0.2)
        assert table["ADD5"] == pytest.approx(9.2, abs=0.2)
        assert table["MUL+ADD5"] == pytest.approx(9.4, abs=0.2)
        assert table["MUL+ADD5+BBO"] == pytest.approx(10.0, abs=0.2)

    def test_monotone_in_features(self):
        m = AreaModel()
        values = [m.overhead_fraction(d) for d in PimDesign]
        assert values == sorted(values)

    def test_scales_with_pim_fraction(self):
        full = AreaModel(pim_fraction=2.0 / 16.0)
        half = AreaModel(pim_fraction=1.0 / 16.0)
        assert full.overhead_fraction(PimDesign.FULL) == pytest.approx(
            2 * half.overhead_fraction(PimDesign.FULL)
        )

    def test_extra_domains_follow_port_placement(self):
        m = AreaModel()
        # TR-constrained placement costs more overhead at smaller TRD.
        assert m.extra_domains(3) > m.extra_domains(7)


class TestEnergyModel:
    def test_paper_energy_reduction(self):
        # Fig. 11: about 25.2x average reduction.
        model = SystemEnergyModel()
        counts = OpCounts(adds=1000, mults=1000)
        assert model.energy_reduction(counts) == pytest.approx(25.2, rel=0.1)

    def test_movement_dominates_cpu_energy(self):
        # Section V-C: data movement ~30x the compute energy.
        model = SystemEnergyModel()
        counts = OpCounts(adds=1000, mults=0)
        movement = model.cpu_energy_pj(counts) - 1000 * 111.0
        assert movement / (1000 * 111.0) == pytest.approx(30, rel=0.3)

    def test_add_cheaper_than_mult_on_pim(self):
        model = SystemEnergyModel()
        adds = model.pim_energy_pj(OpCounts(adds=100))
        mults = model.pim_energy_pj(OpCounts(mults=100))
        assert adds < mults

    def test_trd_energy_tradeoff_matches_table3(self):
        # Table III: TRD 3 is cheaper for adds (10.15 vs 22.14 pJ) but
        # costlier for multiplies (92.01 vs 57.39 pJ).
        adds = OpCounts(adds=100)
        mults = OpCounts(mults=100)
        assert SystemEnergyModel(trd=3).pim_energy_pj(
            adds
        ) < SystemEnergyModel(trd=7).pim_energy_pj(adds)
        assert SystemEnergyModel(trd=3).pim_energy_pj(
            mults
        ) > SystemEnergyModel(trd=7).pim_energy_pj(mults)

    def test_validation(self):
        with pytest.raises(ValueError):
            OpCounts(adds=-1)
        with pytest.raises(ValueError):
            SystemEnergyModel(trd=4)
        with pytest.raises(ValueError):
            SystemEnergyModel().energy_reduction(OpCounts())


class TestPerStepEnergies:
    def test_add_energy_matches_table3(self):
        # The per-step model reproduces the published 8-bit anchors.
        assert coruscant_add_energy_pj(8, trd=7) == pytest.approx(
            CORUSCANT_TABLE3["add5_trd7"].energy_pj, rel=1e-6
        )
        assert coruscant_add_energy_pj(8, trd=3) == pytest.approx(
            CORUSCANT_TABLE3["add2_trd3"].energy_pj, rel=1e-6
        )

    def test_reduction_energy_scales_with_width(self):
        assert coruscant_reduction_energy_pj(32) == pytest.approx(
            2 * coruscant_reduction_energy_pj(16)
        )
