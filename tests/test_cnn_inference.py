"""Tests for bit-exact CNN inference on the simulated PIM."""

import numpy as np
import pytest

from repro.workloads.cnn.inference import (
    PimCnnEngine,
    reference_pipeline,
    run_tiny_cnn,
)


@pytest.fixture(scope="module")
def tensors():
    rng = np.random.default_rng(4)
    return (
        rng.integers(0, 16, (8, 8)),
        rng.integers(0, 16, (3, 3)),
        rng.integers(0, 16, (4, 9)),
    )


class TestLayers:
    def test_conv2d_matches_numpy(self, tensors):
        image, kernel, _ = tensors
        engine = PimCnnEngine()
        got = engine.conv2d(image, kernel)
        want = np.zeros((6, 6), dtype=np.int64)
        for i in range(6):
            for j in range(6):
                want[i, j] = int((image[i : i + 3, j : j + 3] * kernel).sum())
        assert np.array_equal(got, want)

    def test_conv_kernel_too_big(self):
        engine = PimCnnEngine()
        with pytest.raises(ValueError):
            engine.conv2d(np.zeros((2, 2)), np.ones((3, 3)))

    def test_max_pool(self):
        engine = PimCnnEngine()
        feature = np.array([[1, 5, 2, 0], [3, 4, 9, 1],
                            [0, 0, 7, 7], [2, 1, 8, 3]])
        got = engine.max_pool(feature, window=2, n_bits=8)
        assert np.array_equal(got, np.array([[5, 9], [2, 8]]))

    def test_relu_identity_for_unsigned(self):
        engine = PimCnnEngine()
        feature = np.array([[3, 0], [17, 255]])
        assert np.array_equal(engine.relu(feature), feature)

    def test_relu_clears_negative_patterns(self):
        engine = PimCnnEngine()
        width = 8
        feature = np.array([[0x80, 5]])
        got = engine.relu(feature, width=width)
        assert got.tolist() == [[0, 5]]

    def test_dense(self, tensors):
        _, _, fc = tensors
        engine = PimCnnEngine()
        inputs = list(range(1, 10))
        got = engine.dense(inputs, fc, n_bits=4)
        want = (fc @ np.array(inputs)).tolist()
        assert got == want


class TestEndToEnd:
    def test_pipeline_bit_exact(self, tensors):
        image, kernel, fc = tensors
        logits, engine = run_tiny_cnn(image, kernel, fc)
        want = reference_pipeline(image, kernel, fc)
        assert np.array_equal(logits, want)
        assert engine.stats.multiplies > 0
        assert engine.stats.reductions > 0
        assert engine.stats.max_ops > 0

    def test_all_trds_agree(self, tensors):
        image, kernel, fc = tensors
        want = reference_pipeline(image, kernel, fc)
        for trd in (3, 5, 7):
            logits, _ = run_tiny_cnn(image, kernel, fc, trd=trd)
            assert np.array_equal(logits, want)

    def test_trd7_cheapest(self, tensors):
        image, kernel, fc = tensors
        cycles = {}
        for trd in (3, 5, 7):
            _, engine = run_tiny_cnn(image, kernel, fc, trd=trd)
            cycles[trd] = engine.cycles
        assert cycles[7] < cycles[5] < cycles[3]

    def test_zero_image(self):
        image = np.zeros((8, 8), dtype=np.int64)
        kernel = np.ones((3, 3), dtype=np.int64)
        fc = np.ones((2, 9), dtype=np.int64)
        logits, _ = run_tiny_cnn(image, kernel, fc)
        assert logits.tolist() == [0, 0]

    def test_pool_candidates_beyond_trd(self):
        engine = PimCnnEngine(trd=3)
        feature = np.arange(16).reshape(4, 4)
        got = engine.max_pool(feature, window=4, n_bits=8)
        assert got.tolist() == [[15]]


class TestTernaryConv:
    def test_matches_numpy(self):
        import numpy as np
        from repro.workloads.cnn.inference import PimCnnEngine

        rng = np.random.default_rng(8)
        image = rng.integers(0, 200, (6, 6))
        kernel = rng.integers(-1, 2, (3, 3))
        engine = PimCnnEngine()
        got = engine.ternary_conv2d(image, kernel)
        want = np.zeros((4, 4), dtype=np.int64)
        for i in range(4):
            for j in range(4):
                want[i, j] = int((image[i:i+3, j:j+3] * kernel).sum())
        assert np.array_equal(got, want)

    def test_no_multiplies_used(self):
        import numpy as np
        from repro.workloads.cnn.inference import PimCnnEngine

        engine = PimCnnEngine()
        image = np.ones((5, 5), dtype=np.int64) * 7
        kernel = np.array([[1, -1, 0], [0, 1, 0], [-1, 0, 1]])
        engine.ternary_conv2d(image, kernel)
        assert engine.stats.multiplies == 0

    def test_negative_outputs(self):
        import numpy as np
        from repro.workloads.cnn.inference import PimCnnEngine

        engine = PimCnnEngine()
        image = np.full((3, 3), 9, dtype=np.int64)
        kernel = np.full((3, 3), -1, dtype=np.int64)
        got = engine.ternary_conv2d(image, kernel)
        assert got.tolist() == [[-81]]

    def test_non_ternary_rejected(self):
        import numpy as np
        import pytest
        from repro.workloads.cnn.inference import PimCnnEngine

        engine = PimCnnEngine()
        with pytest.raises(ValueError):
            engine.ternary_conv2d(np.ones((4, 4)), np.full((2, 2), 2))

    def test_cheaper_than_full_precision(self):
        import numpy as np
        from repro.workloads.cnn.inference import PimCnnEngine

        rng = np.random.default_rng(9)
        image = rng.integers(1, 16, (6, 6))
        full_kernel = rng.integers(1, 8, (3, 3))
        ternary_kernel = np.sign(full_kernel - 4)
        full_engine = PimCnnEngine()
        full_engine.conv2d(image, full_kernel)
        ternary_engine = PimCnnEngine()
        ternary_engine.ternary_conv2d(image, ternary_kernel)
        assert ternary_engine.cycles < full_engine.cycles


class TestMultiChannelConv:
    def test_matches_numpy(self):
        import numpy as np
        from repro.workloads.cnn.inference import PimCnnEngine

        rng = np.random.default_rng(12)
        image = rng.integers(0, 8, (2, 5, 5))
        kernels = rng.integers(0, 8, (3, 2, 3, 3))
        engine = PimCnnEngine()
        got = engine.conv2d_multichannel(image, kernels)
        want = np.zeros((3, 3, 3), dtype=np.int64)
        for f in range(3):
            for i in range(3):
                for j in range(3):
                    want[f, i, j] = int(
                        (image[:, i:i+3, j:j+3] * kernels[f]).sum()
                    )
        assert np.array_equal(got, want)

    def test_channel_mismatch_rejected(self):
        import numpy as np
        import pytest
        from repro.workloads.cnn.inference import PimCnnEngine

        engine = PimCnnEngine()
        with pytest.raises(ValueError):
            engine.conv2d_multichannel(
                np.zeros((2, 4, 4)), np.zeros((1, 3, 2, 2))
            )

    def test_shape_validation(self):
        import numpy as np
        import pytest
        from repro.workloads.cnn.inference import PimCnnEngine

        engine = PimCnnEngine()
        with pytest.raises(ValueError):
            engine.conv2d_multichannel(np.zeros((4, 4)), np.zeros((1, 1, 2, 2)))


class TestPeakThroughput:
    def test_paper_claim(self):
        import pytest
        from repro.workloads.cnn.mapping import peak_throughput

        p = peak_throughput()
        assert p.tops == pytest.approx(26, rel=0.05)
        assert p.gopj == pytest.approx(108, rel=0.05)

    def test_scales_with_units(self):
        from repro.workloads.cnn.mapping import peak_throughput

        half = peak_throughput(pim_units=1024)
        full = peak_throughput(pim_units=2048)
        assert full.tops == 2 * half.tops
        assert full.gopj == half.gopj  # efficiency is per-op

    def test_utilization_validated(self):
        import pytest
        from repro.workloads.cnn.mapping import peak_throughput

        with pytest.raises(ValueError):
            peak_throughput(utilization=0)
