"""Unit tests for the popcount and comparison units."""

import pytest

from repro.arch.dbc import DomainBlockCluster
from repro.core.compare import CompareUnit, pack_row, unpack_row
from repro.core.popcount import PopcountUnit
from repro.device.parameters import DeviceParameters


def make_dbc(tracks=32, trd=7):
    return DomainBlockCluster(
        tracks=tracks, domains=32, params=DeviceParameters(trd=trd)
    )


class TestPopcount:
    @pytest.mark.parametrize(
        "bits",
        [
            [0] * 16,
            [1] * 16,
            [1, 0] * 8,
            [1, 1, 1, 0, 0, 0, 1, 0, 1],
        ],
    )
    def test_counts(self, bits):
        unit = PopcountUnit(make_dbc())
        assert unit.count_row(bits).count == sum(bits)

    def test_long_row(self):
        bits = [(i * 7) % 3 == 0 for i in range(200)]
        bits = [1 if b else 0 for b in bits]
        unit = PopcountUnit(make_dbc(tracks=48))
        result = unit.count_row(bits)
        assert result.count == sum(bits)
        assert result.groups == -(-200 // 7)

    def test_trd3(self):
        unit = PopcountUnit(make_dbc(trd=3))
        bits = [1, 0, 1, 1, 0, 1, 1, 1, 0, 0, 1]
        assert unit.count_row(bits).count == sum(bits)

    def test_rejects_non_bits(self):
        unit = PopcountUnit(make_dbc())
        with pytest.raises(ValueError):
            unit.count_row([0, 2, 1])

    def test_requires_pim(self):
        plain = DomainBlockCluster(tracks=8, domains=32, pim_enabled=False)
        with pytest.raises(ValueError):
            PopcountUnit(plain)

    def test_cycles_accumulate(self):
        unit = PopcountUnit(make_dbc())
        assert unit.count_row([1] * 20).cycles > 0


class TestCompareUnit:
    def test_minimum(self):
        unit = CompareUnit(make_dbc(tracks=16))
        assert unit.minimum([12, 250, 99], 8).value == 12

    def test_minimum_with_zero(self):
        unit = CompareUnit(make_dbc(tracks=16))
        assert unit.minimum([0, 77, 255], 8).value == 0

    def test_minimum_single(self):
        unit = CompareUnit(make_dbc(tracks=16))
        assert unit.minimum([42], 8).value == 42

    def test_greater_equal(self):
        unit = CompareUnit(make_dbc(tracks=16))
        assert unit.greater_equal(200, 100, 8).value == 1
        assert unit.greater_equal(100, 200, 8).value == 0
        assert unit.greater_equal(55, 55, 8).value == 1

    def test_relu_row(self):
        unit = CompareUnit(make_dbc(tracks=16))
        # Two's-complement 8-bit: 0x80.. are negative.
        out = unit.relu_row([5, 0x80, 127, 0xFF], 8)
        assert out == [5, 0, 127, 0]

    def test_relu_validation(self):
        unit = CompareUnit(make_dbc(tracks=16))
        with pytest.raises(ValueError):
            unit.relu_row([256], 8)

    def test_min_empty_rejected(self):
        unit = CompareUnit(make_dbc(tracks=16))
        with pytest.raises(ValueError):
            unit.minimum([], 8)


class TestPackUnpack:
    def test_roundtrip(self):
        words = [3, 255, 0, 17]
        row = pack_row(words, 8, 64)
        assert unpack_row(row, 8)[:4] == words

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_row([1] * 9, 8, 64)
