"""Unit tests for the DDR timing models."""

import pytest

from repro.arch.timing import DDRTimings, DRAM_DDR3_1600, DWM_DDR3_1600


class TestTableII:
    def test_dram_parameters(self):
        # Table II: DRAM tRAS-tRCD-tRP-tCAS-tWR = 20-8-8-8-8.
        t = DRAM_DDR3_1600
        assert (t.t_ras, t.t_rcd, t.t_rp, t.t_cas, t.t_wr) == (20, 8, 8, 8, 8)

    def test_dwm_parameters(self):
        # Table II: DWM 9-4-S-4-4 with shifting replacing precharge.
        t = DWM_DDR3_1600
        assert (t.t_ras, t.t_rcd, t.t_cas, t.t_wr) == (9, 4, 4, 4)
        assert t.t_rp == 0
        assert t.shift_per_position == 1

    def test_memory_cycle(self):
        assert DRAM_DDR3_1600.cycle_ns == 1.25


class TestLatencies:
    def test_row_hit_is_cas(self):
        assert DRAM_DDR3_1600.row_hit_read_cycles() == 8

    def test_dram_miss(self):
        assert DRAM_DDR3_1600.row_miss_read_cycles() == 8 + 8 + 8

    def test_dwm_miss_includes_shifts(self):
        assert DWM_DDR3_1600.row_miss_read_cycles(shifts=5) == 4 + 4 + 5

    def test_shift_cycles_validation(self):
        with pytest.raises(ValueError):
            DWM_DDR3_1600.shift_cycles(-1)

    def test_ns_conversion(self):
        assert DRAM_DDR3_1600.ns(8) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DDRTimings(t_ras=-1, t_rcd=0, t_rp=0, t_cas=0, t_wr=0)
        with pytest.raises(ValueError):
            DDRTimings(t_ras=1, t_rcd=1, t_rp=1, t_cas=1, t_wr=1, cycle_ns=0)
