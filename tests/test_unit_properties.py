"""Property-based tests for the auxiliary PIM units."""

from hypothesis import given, settings, strategies as st

from repro.arch.dbc import DomainBlockCluster
from repro.core.avgpool import AverageUnit
from repro.core.compare import CompareUnit
from repro.core.popcount import PopcountUnit
from repro.device.parameters import DeviceParameters


def make_dbc(tracks=32, trd=7):
    return DomainBlockCluster(
        tracks=tracks, domains=32, params=DeviceParameters(trd=trd)
    )


class TestPopcountProperty:
    @given(st.lists(st.integers(0, 1), min_size=0, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_counts_any_row(self, bits):
        unit = PopcountUnit(make_dbc(tracks=48))
        assert unit.count_row(bits).count == sum(bits)

    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=60),
        st.sampled_from([3, 5, 7]),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_trds(self, bits, trd):
        unit = PopcountUnit(make_dbc(tracks=48, trd=trd))
        assert unit.count_row(bits).count == sum(bits)


class TestCompareProperty:
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=7))
    @settings(max_examples=30, deadline=None)
    def test_minimum(self, words):
        unit = CompareUnit(make_dbc(tracks=16))
        assert unit.minimum(words, 8).value == min(words)

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_greater_equal(self, a, b):
        unit = CompareUnit(make_dbc(tracks=16))
        assert unit.greater_equal(a, b, 8).value == (1 if a >= b else 0)


class TestAverageProperty:
    @given(
        st.sampled_from([1, 2, 4, 8]),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_mean_floor(self, count, data):
        words = data.draw(
            st.lists(
                st.integers(0, 255), min_size=count, max_size=count
            )
        )
        unit = AverageUnit(make_dbc())
        assert unit.average(words, 8).value == sum(words) // count
