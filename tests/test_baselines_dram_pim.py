"""Unit tests for the Ambit and ELP2IM baseline models."""

import pytest

from repro.baselines.ambit import Ambit
from repro.baselines.elp2im import ELP2IM


def row(*bits):
    return list(bits)


class TestAmbitFunctional:
    def test_tra_majority(self):
        ambit = Ambit()
        out = ambit.tra_majority(
            row(1, 1, 0, 0), row(1, 0, 1, 0), row(1, 0, 0, 0)
        )
        assert out == [1, 0, 0, 0]

    def test_and_or(self):
        ambit = Ambit()
        a, b = row(1, 1, 0, 0), row(1, 0, 1, 0)
        assert ambit.bitwise_and(a, b) == [1, 0, 0, 0]
        assert ambit.bitwise_or(a, b) == [1, 1, 1, 0]

    def test_xor_via_dcc_recipe(self):
        ambit = Ambit()
        a, b = row(1, 1, 0, 0), row(1, 0, 1, 0)
        assert ambit.bitwise_xor(a, b) == [0, 1, 1, 0]

    def test_not(self):
        assert Ambit().bitwise_not(row(1, 0, 1, 1)) == [0, 1, 0, 0]

    def test_multi_and_chains(self):
        ambit = Ambit()
        rows_in = [row(1, 1, 1, 0), row(1, 1, 0, 0), row(1, 0, 1, 0)]
        assert ambit.multi_and(rows_in) == [1, 0, 0, 0]

    def test_and_charges_clones_plus_tra(self):
        ambit = Ambit()
        ambit.bitwise_and(row(1, 0), row(1, 1))
        assert ambit.stats.aaps == 3  # two operands + control row
        assert ambit.stats.tras == 1

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            Ambit().bitwise_and(row(1), row(1, 0))


class TestElp2imFunctional:
    def test_ops(self):
        elp = ELP2IM()
        a, b = row(1, 1, 0, 0), row(1, 0, 1, 0)
        assert elp.bitwise_and(a, b) == [1, 0, 0, 0]
        assert elp.bitwise_or(a, b) == [1, 1, 1, 0]
        assert elp.bitwise_xor(a, b) == [0, 1, 1, 0]
        assert elp.bitwise_not(a) == [0, 0, 1, 1]

    def test_no_row_cloning(self):
        elp = ELP2IM()
        elp.bitwise_and(row(1, 0), row(1, 1))
        assert elp.stats.ops == 1

    def test_faster_than_ambit_per_op(self):
        # ELP2IM reports ~3.2x over Ambit on bulk-bitwise ops.
        ambit = Ambit()
        elp = ELP2IM()
        ambit.bitwise_and(row(1, 0), row(1, 1))
        elp.bitwise_and(row(1, 0), row(1, 1))
        ratio = ambit.stats.cycles / elp.stats.cycles
        assert 2.5 <= ratio <= 5.0

    def test_addition_step_40_cycles(self):
        # Section IV-A: one in-DRAM CLA step takes 40 cycles.
        assert ELP2IM().addition_step_cycles() == 40
        assert Ambit().addition_step_cycles() > 40
