"""Chaos campaign end-to-end: determinism, invariants, CLI contract.

The load-bearing assertions: a campaign is a pure function of
(seed, faults, duration) down to the serialized report bytes; the
worker-kill + torn-WAL story ends with zero lost acked requests; and
the ``repro chaos`` CLI speaks the shared exit-code contract (0 green,
2 usage, 3 violated invariant).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.chaos.campaign import CHAOS_SCHEMA, run_campaign
from repro.chaos.faults import parse_fault_specs
from repro.chaos.invariants import (
    check_accounting,
    check_breaker_isolation,
    check_events_consistency,
    check_no_acked_lost,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FAULTS = "worker-crash:1,torn-wal:1,kernel-fault:1,ack-suppress:1"


def campaign(seed=42, faults=FAULTS, ops=8, **kwargs):
    return run_campaign(
        seed=seed,
        fault_specs=parse_fault_specs(faults),
        duration_ops=ops,
        **kwargs,
    )


class TestInvariantCheckers:
    def test_no_acked_lost_green_and_each_red_reason(self):
        good = {"k": {"replayed": True, "digest_matches": True}}
        assert check_no_acked_lost(["k"], good)["ok"]
        missing = check_no_acked_lost(["k"], {})
        assert not missing["ok"]
        assert missing["detail"]["lost"][0]["reason"] == "never_resubmitted"
        re_exec = check_no_acked_lost(
            ["k"], {"k": {"replayed": False, "digest_matches": True}}
        )
        assert re_exec["detail"]["lost"][0]["reason"] == "re_executed"
        mismatch = check_no_acked_lost(
            ["k"], {"k": {"replayed": True, "digest_matches": False}}
        )
        assert mismatch["detail"]["lost"][0]["reason"] == "digest_mismatch"

    def test_accounting_conservation(self):
        counters = {
            "service.requests": 7,
            "service.rejected": 3,
            "service.admitted": 7,
        }
        assert check_accounting(10, counters)["ok"]
        assert not check_accounting(11, counters)["ok"]
        counters["service.admitted"] = 8  # admitted never landed
        assert not check_accounting(10, counters)["ok"]

    def test_breaker_isolation(self):
        assert check_breaker_isolation(1, "OPEN", "CLOSED", "ok")["ok"]
        assert check_breaker_isolation(0, None, "CLOSED", "ok")["ok"]
        assert not check_breaker_isolation(1, "CLOSED", "CLOSED", "ok")["ok"]
        assert not check_breaker_isolation(0, None, "OPEN", "ok")["ok"]
        assert not check_breaker_isolation(
            0, None, "CLOSED", "breaker_open"
        )["ok"]

    def test_events_consistency(self):
        ids = ["t1", "t2", "t3"]
        counters = {"service.requests": 3, "events.write_errors": 0}
        assert check_events_consistency(counters, ids)["ok"]
        # A dropped done-event is only tolerable if write_errors covers it.
        counters = {"service.requests": 3, "events.write_errors": 1}
        assert check_events_consistency(counters, ids[:2])["ok"]
        counters = {"service.requests": 3, "events.write_errors": 0}
        assert not check_events_consistency(counters, ids[:2])["ok"]
        # Duplicate trace ids mean the causal chain broke.
        assert not check_events_consistency(
            {"service.requests": 3, "events.write_errors": 0},
            ["t1", "t1", "t2"],
        )["ok"]


class TestCampaign:
    def test_worker_kill_torn_wal_ends_green(self, tmp_path):
        report = campaign(journal_dir=str(tmp_path))
        assert report["schema"] == CHAOS_SCHEMA
        assert report["ok"] is True
        assert all(inv["ok"] for inv in report["invariants"])
        # Every scheduled event is accounted as fired or unfired.
        assert len(report["fired"]) + len(report["unfired"]) == len(
            report["fault_timeline"]
        )
        # The torn ack and the suppressed ack both forced replays.
        assert report["journal"]["recovered"]["pending"] >= 1
        assert report["replay"]["count"] >= 1
        # Every durably-acked request resubmitted to its original.
        assert report["journal"]["acked_on_disk"] >= 1
        assert (
            report["resubmits"]["count"]
            == report["journal"]["acked_on_disk"]
        )
        for record in report["resubmits"]["records"]:
            assert record["replayed"] and record["digest_matches"]

    def test_reports_are_byte_identical(self, tmp_path):
        a = campaign(journal_dir=str(tmp_path / "a"))
        b = campaign(journal_dir=str(tmp_path / "b"))
        assert json.dumps(a, sort_keys=True) == json.dumps(
            b, sort_keys=True
        )

    def test_seed_changes_the_timeline(self, tmp_path):
        a = campaign(seed=1, journal_dir=str(tmp_path / "a"))
        b = campaign(seed=2, journal_dir=str(tmp_path / "b"))
        assert a["fault_timeline"] != b["fault_timeline"]

    def test_breaker_storm_isolates_victim(self, tmp_path):
        report = campaign(
            faults="breaker-storm:1", journal_dir=str(tmp_path)
        )
        assert report["ok"] is True
        assert report["breakers"]["victim"]["state"] == "OPEN"
        assert report["breakers"]["default"]["state"] == "CLOSED"
        assert report["probes"]["victim"]["error"] == "breaker_open"
        assert report["probes"]["default"]["status"] == "ok"

    def test_injected_violation_turns_report_red(self, tmp_path):
        report = campaign(
            journal_dir=str(tmp_path), inject_violation=True
        )
        assert report["ok"] is False
        red = [inv for inv in report["invariants"] if not inv["ok"]]
        assert [inv["name"] for inv in red] == ["no-acked-request-lost"]


class TestChaosCli:
    def run_cli(self, *argv):
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "chaos", *argv],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_green_campaign_exits_zero(self, tmp_path):
        out = tmp_path / "report.json"
        proc = self.run_cli(
            "--seed", "42", "--duration-ops", "6",
            "--faults", "worker-crash:1,torn-wal:1",
            "--report-out", str(out),
        )
        assert proc.returncode == 0, proc.stderr
        assert "all invariants green" in proc.stdout
        report = json.loads(out.read_text())
        assert report["schema"] == CHAOS_SCHEMA
        assert report["ok"] is True

    def test_violation_exits_three(self):
        proc = self.run_cli(
            "--seed", "42", "--duration-ops", "6",
            "--faults", "torn-wal:1",
            "--inject-invariant-violation",
        )
        assert proc.returncode == 3, proc.stdout + proc.stderr
        assert "INVARIANT VIOLATION" in proc.stdout

    def test_bad_fault_spec_is_usage_error(self):
        proc = self.run_cli("--faults", "no-such-kind:1")
        assert proc.returncode == 2
        assert "no-such-kind" in proc.stderr

    def test_json_output_carries_exit_status(self):
        proc = self.run_cli(
            "--seed", "7", "--duration-ops", "6",
            "--faults", "worker-crash:1", "--json",
        )
        assert proc.returncode == 0, proc.stderr
        document = json.loads(proc.stdout)
        assert document["schema"] == CHAOS_SCHEMA
        assert document["exit_status"] == 0
