"""Property-based tests on the core invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.arch.dbc import DomainBlockCluster
from repro.core.addition import MultiOperandAdder
from repro.core.booth import plan_constant_multiply
from repro.core.maxpool import MaxUnit
from repro.core.multiplication import Multiplier
from repro.core.nmr import ModularRedundancy
from repro.core.pim_logic import adder_outputs
from repro.core.reduction import CarrySaveReducer
from repro.device.nanowire import AccessPort, Nanowire
from repro.device.parameters import DeviceParameters
from repro.utils.bitops import bits_from_int


def make_dbc(tracks=48, trd=7):
    return DomainBlockCluster(
        tracks=tracks, domains=32, params=DeviceParameters(trd=trd)
    )


bytes_ = st.integers(min_value=0, max_value=255)


class TestAdderOutputsProperty:
    @given(st.integers(min_value=0, max_value=7))
    def test_decomposition(self, level):
        s, c, cp = adder_outputs(level)
        assert s + 2 * c + 4 * cp == level


class TestTransverseReadProperty:
    @given(st.lists(st.integers(0, 1), min_size=32, max_size=32))
    @settings(max_examples=50)
    def test_tr_equals_popcount_of_window(self, bits):
        wire = Nanowire(32, [AccessPort(14), AccessPort(20)])
        wire.load(bits)
        assert wire.transverse_read(0, 1) == sum(bits[14:21])

    @given(
        st.lists(st.integers(0, 1), min_size=32, max_size=32),
        st.lists(st.sampled_from([1, -1]), min_size=0, max_size=10),
    )
    @settings(max_examples=50)
    def test_shift_sequences_preserve_data(self, bits, moves):
        wire = Nanowire(32, [AccessPort(14), AccessPort(20)])
        wire.load(bits)
        net = 0
        for direction in moves:
            lo = -wire.overhead_left
            hi = wire.overhead_right
            if lo < net + direction <= hi if direction > 0 else lo <= net + direction:
                wire.shift(direction)
                net += direction
        wire.shift(-1 if net > 0 else 1, abs(net))
        assert wire.dump() == bits


class TestAdditionProperty:
    @given(st.lists(bytes_, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_sum_exact(self, words):
        adder = MultiOperandAdder(make_dbc())
        assert adder.add_words(words, 8).value == sum(words)

    @given(st.lists(st.integers(0, 65535), min_size=2, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_sum_exact_16bit(self, words):
        adder = MultiOperandAdder(make_dbc(tracks=64))
        assert adder.add_words(words, 16).value == sum(words)

    @given(st.lists(bytes_, min_size=1, max_size=2))
    @settings(max_examples=30, deadline=None)
    def test_trd3_sum_exact(self, words):
        adder = MultiOperandAdder(make_dbc(trd=3))
        assert adder.add_words(words, 8).value == sum(words)


class TestReductionProperty:
    @given(st.lists(st.integers(0, 2**20 - 1), min_size=2, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_reduction_preserves_sum(self, values):
        reducer = CarrySaveReducer(make_dbc(tracks=48))
        rows = [bits_from_int(v, 48) for v in values]
        result = reducer.reduce_to(rows)
        assert reducer.rows_sum(result.rows) == sum(values)


class TestMultiplicationProperty:
    @given(bytes_, bytes_)
    @settings(max_examples=40, deadline=None)
    def test_optimized(self, a, b):
        mult = Multiplier(make_dbc())
        assert mult.multiply(a, b, 8).value == a * b

    @given(bytes_, bytes_)
    @settings(max_examples=25, deadline=None)
    def test_arbitrary(self, a, b):
        mult = Multiplier(make_dbc())
        assert mult.multiply_arbitrary(a, b, 8).value == a * b

    @given(bytes_, st.integers(0, 4000))
    @settings(max_examples=25, deadline=None)
    def test_constant(self, a, constant):
        mult = Multiplier(make_dbc())
        got = mult.multiply_constant(a, constant, 8, result_bits=22)
        assert got.value == (a * constant) & ((1 << 22) - 1)

    @given(bytes_, bytes_, st.sampled_from([3, 5, 7]))
    @settings(max_examples=25, deadline=None)
    def test_all_trds(self, a, b, trd):
        mult = Multiplier(make_dbc(trd=trd))
        assert mult.multiply(a, b, 8).value == a * b


class TestBoothProperty:
    @given(st.integers(0, 10**7), st.sampled_from([3, 5, 7]))
    @settings(max_examples=60)
    def test_plan_always_correct(self, constant, trd):
        plan = plan_constant_multiply(constant, trd)
        assert plan.evaluate(3) == 3 * constant


class TestMaxProperty:
    @given(st.lists(bytes_, min_size=1, max_size=7))
    @settings(max_examples=40, deadline=None)
    def test_max_found(self, words):
        unit = MaxUnit(make_dbc(tracks=16))
        assert unit.run(words, 8).value == max(words)

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_max_trd5(self, words):
        unit = MaxUnit(make_dbc(tracks=16, trd=5))
        assert unit.run(words, 4).value == max(words)


class TestNmrProperty:
    @given(
        st.lists(st.integers(0, 1), min_size=8, max_size=8),
        st.sampled_from([3, 5, 7]),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_minority_faults_corrected(self, good, n, data):
        nmr = ModularRedundancy(make_dbc(tracks=8))
        max_faults = (n - 1) // 2
        fault_count = data.draw(st.integers(0, max_faults))
        faulty_replicas = data.draw(
            st.lists(
                st.integers(0, n - 1),
                min_size=fault_count,
                max_size=fault_count,
                unique=True,
            )
        )
        reps = [list(good) for _ in range(n)]
        for idx in faulty_replicas:
            pos = data.draw(st.integers(0, 7))
            reps[idx][pos] ^= 1
        assert nmr.vote(reps).bits == good
