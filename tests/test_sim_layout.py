"""Unit tests for the PIM data-layout allocator and transforms."""

import pytest

from repro.arch.geometry import MemoryGeometry
from repro.arch.memory import MainMemory
from repro.sim.layout import (
    PimAllocator,
    pack_blocks,
    transpose_words,
    unpack_blocks,
)


def make_allocator():
    return PimAllocator(
        MainMemory(geometry=MemoryGeometry(tracks_per_dbc=16))
    )


class TestAllocator:
    def test_round_robin_placement(self):
        alloc = make_allocator()
        a = alloc.allocate("a", rows=2)
        b = alloc.allocate("b", rows=2)
        assert (a.bank, a.subarray) != (b.bank, b.subarray)

    def test_region_lookup(self):
        alloc = make_allocator()
        alloc.allocate("weights", rows=4)
        assert alloc.region("weights").rows == 4
        with pytest.raises(KeyError):
            alloc.region("nonexistent")

    def test_duplicate_rejected(self):
        alloc = make_allocator()
        alloc.allocate("x", rows=1)
        with pytest.raises(ValueError):
            alloc.allocate("x", rows=1)

    def test_free(self):
        alloc = make_allocator()
        alloc.allocate("x", rows=1)
        alloc.free("x")
        alloc.allocate("x", rows=1)  # reusable

    def test_dbc_binding(self):
        alloc = make_allocator()
        region = alloc.allocate("x", rows=1)
        dbc = alloc.dbc_for(region)
        assert dbc.pim_enabled

    def test_spread_targets(self):
        alloc = make_allocator()
        targets = list(alloc.spread(5))
        assert len(targets) == 5
        assert len(set(targets)) == 5

    def test_blocksize_validation(self):
        alloc = make_allocator()
        with pytest.raises(ValueError):
            alloc.allocate("bad", rows=1, blocksize=48)

    def test_units_match_geometry(self):
        alloc = make_allocator()
        assert alloc.units == 2048


class TestTranspose:
    def test_bit_per_track(self):
        rows = transpose_words([3, 1], 2, 4)
        assert rows == [[1, 1, 0, 0], [1, 0, 0, 0]]

    def test_zero_extension(self):
        rows = transpose_words([5], 3, 8)
        assert rows[0] == [1, 0, 1, 0, 0, 0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            transpose_words([4], 2, 8)  # word too wide
        with pytest.raises(ValueError):
            transpose_words([1], 16, 8)  # bits exceed tracks


class TestBlockPacking:
    def test_roundtrip(self):
        words = [200, 3, 255, 0]
        row = pack_blocks(words, 8, 64)
        assert unpack_blocks(row, 8, count=4) == words

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            pack_blocks([0] * 9, 8, 64)

    def test_word_width_enforced(self):
        with pytest.raises(ValueError):
            pack_blocks([256], 8, 64)

    def test_unpack_all_blocks(self):
        row = pack_blocks([7, 9], 8, 32)
        assert unpack_blocks(row, 8) == [7, 9, 0, 0]

    def test_invalid_blocksize(self):
        with pytest.raises(ValueError):
            pack_blocks([1], 10, 64)
