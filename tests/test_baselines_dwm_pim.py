"""Unit tests for the DW-NN and SPIM baseline models."""

import pytest

from repro.baselines.dwnn import DWNN
from repro.baselines.spim import SPIM


class TestDwnnFunctional:
    def test_gmr_xor(self):
        assert DWNN.gmr_xor(0, 0) == 0
        assert DWNN.gmr_xor(1, 0) == 1
        assert DWNN.gmr_xor(1, 1) == 0

    def test_gmr_rejects_non_bits(self):
        with pytest.raises(ValueError):
            DWNN.gmr_xor(2, 0)

    def test_pcsa_full_add_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    s, cout = DWNN.pcsa_full_add(a, b, c)
                    assert s + 2 * cout == a + b + c

    @pytest.mark.parametrize("a,b", [(0, 0), (255, 1), (173, 219), (128, 128)])
    def test_add_correct(self, a, b):
        total, _ = DWNN().add(a, b, 8)
        assert total == a + b

    def test_add_cycles_match_table3(self):
        _, cycles = DWNN().add(173, 58, 8)
        assert cycles == 54

    def test_multiply_correct(self):
        product, cycles = DWNN().multiply(173, 219, 8)
        assert product == 173 * 219
        assert cycles == 163  # published characterisation

    def test_add_multi_serial(self):
        total, cycles = DWNN().add_multi([1, 2, 3, 4, 5], 8)
        assert total == 15
        assert cycles > 4 * 54  # strictly serial chaining

    def test_add_multi_latency_optimized_faster(self):
        _, serial = DWNN().add_multi([1, 2, 3, 4, 5], 8)
        _, tree = DWNN().add_multi([1, 2, 3, 4, 5], 8, latency_optimized=True)
        assert tree < serial


class TestSpimFunctional:
    def test_gate_primitives(self):
        assert SPIM.sky_or(0, 0) == 0
        assert SPIM.sky_or(1, 0) == 1
        assert SPIM.sky_and(1, 0) == 0
        assert SPIM.sky_and(1, 1) == 1

    def test_full_add_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    s, cout = SPIM.full_add(a, b, c)
                    assert s + 2 * cout == a + b + c

    @pytest.mark.parametrize("a,b", [(0, 0), (255, 255), (173, 219)])
    def test_add_correct(self, a, b):
        total, _ = SPIM().add(a, b, 8)
        assert total == a + b

    def test_add_cycles_match_table3(self):
        _, cycles = SPIM().add(173, 58, 8)
        assert cycles == 49

    def test_multiply_correct(self):
        product, cycles = SPIM().multiply(99, 201, 8)
        assert product == 99 * 201
        assert cycles == 149


class TestPublishedOrdering:
    def test_spim_faster_than_dwnn(self):
        # Table III: SPIM beats DW-NN on every operation.
        for op in ("add2", "add5_area", "add5_latency", "mult"):
            assert SPIM.table3_cycles(op) < DWNN.table3_cycles(op)
            assert SPIM.table3_energy_pj(op) < DWNN.table3_energy_pj(op)

    def test_costs_table_complete(self):
        assert set(DWNN().costs_table()) == {
            "add2", "add5_area", "add5_latency", "mult",
        }
