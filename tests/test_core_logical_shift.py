"""Unit tests for the inter-bitline logical shifter."""

import pytest

from repro.arch.dbc import DomainBlockCluster
from repro.core.logical_shift import LogicalShifter
from repro.device.parameters import DeviceParameters
from repro.utils.bitops import bits_from_int, bits_to_int


def make_shifter(tracks=16):
    dbc = DomainBlockCluster(
        tracks=tracks, domains=32, params=DeviceParameters(trd=7)
    )
    return LogicalShifter(dbc), dbc


class TestShiftRow:
    def test_doubles_value(self):
        shifter, _ = make_shifter()
        row = bits_from_int(5, 16)
        assert bits_to_int(shifter.shift_row(row, 1)) == 10

    def test_multi_position(self):
        shifter, _ = make_shifter()
        row = bits_from_int(3, 16)
        assert bits_to_int(shifter.shift_row(row, 4)) == 48

    def test_zero_shift_free(self):
        shifter, dbc = make_shifter()
        before = dbc.stats.cycles
        shifter.shift_row(bits_from_int(7, 16), 0)
        assert dbc.stats.cycles == before

    def test_two_cycles_per_position(self):
        shifter, dbc = make_shifter()
        before = dbc.stats.cycles
        shifter.shift_row(bits_from_int(1, 16), 3)
        assert dbc.stats.cycles - before == 6

    def test_overflow_detected(self):
        shifter, _ = make_shifter(tracks=4)
        with pytest.raises(OverflowError):
            shifter.shift_row(bits_from_int(8, 4), 1)

    def test_negative_rejected(self):
        shifter, _ = make_shifter()
        with pytest.raises(ValueError):
            shifter.shift_row([0] * 16, -1)


class TestShiftedCopies:
    def test_copies_are_doublings(self):
        shifter, _ = make_shifter()
        result = shifter.shifted_copies(bits_from_int(3, 16), 4)
        assert [bits_to_int(r) for r in result.rows] == [3, 6, 12, 24]

    def test_predicate_zeroes_copies(self):
        shifter, _ = make_shifter()
        result = shifter.shifted_copies(
            bits_from_int(1, 16), 4, predicate=[1, 0, 1, 0]
        )
        assert [bits_to_int(r) for r in result.rows] == [1, 0, 4, 0]

    def test_paper_cost_model(self):
        # 8 copies: stage-in 2 + 7 shifted r/w pairs (14) + 8 DW shifts
        # + predication 2 = 26 cycles, the multiply breakdown value.
        shifter, _ = make_shifter()
        result = shifter.shifted_copies(
            bits_from_int(1, 16), 8, predicate=[1] * 8
        )
        assert result.cycles == 26

    def test_predicate_length_checked(self):
        shifter, _ = make_shifter()
        with pytest.raises(ValueError):
            shifter.shifted_copies(bits_from_int(1, 16), 4, predicate=[1])

    def test_count_validated(self):
        shifter, _ = make_shifter()
        with pytest.raises(ValueError):
            shifter.shifted_copies(bits_from_int(1, 16), 0)

    def test_requires_pim(self):
        plain = DomainBlockCluster(tracks=8, domains=32, pim_enabled=False)
        with pytest.raises(ValueError):
            LogicalShifter(plain)
