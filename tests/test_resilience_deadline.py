"""Deadline budgets and their interaction with the resilient ladder.

The satellite contract: retries must stop the moment the budget is
exhausted, the DBC must be restored to its pre-op snapshot (never torn
mid-attempt), and budget exhaustion is the caller's clock — not a
device-health event.
"""

import pytest

from repro.arch.geometry import MemoryGeometry
from repro.core.addition import MultiOperandAdder
from repro.core.isa import Address, CpimInstruction, CpimOp
from repro.device.faults import FaultConfig
from repro.resilience.errors import (
    BudgetExhaustedError,
    UncorrectableFaultError,
)
from repro.resilience.policy import RetryPolicy
from repro.sim.system import CoruscantSystem
from repro.utils.deadline import Deadline


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def add_instruction(blocksize=16, operands=2):
    address = Address(bank=0, subarray=0, tile=0, dbc=0, row=0)
    return CpimInstruction(
        op=CpimOp.ADD,
        blocksize=blocksize,
        src=address,
        dest=address,
        operands=operands,
    )


def make_system(rate=0.0, seed=0, policy=None, tracks=16):
    return CoruscantSystem(
        trd=7,
        geometry=MemoryGeometry(tracks_per_dbc=tracks),
        fault_config=FaultConfig(tr_fault_rate=rate, seed=seed),
        resilience=policy if policy is not None else False,
    )


class TestDeadline:
    def test_budget_counts_down(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_never_expires(self):
        clock = FakeClock()
        deadline = Deadline.never(clock=clock)
        clock.advance(1e9)
        assert not deadline.expired
        assert deadline.allows(1e12)

    def test_allows(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.allows(0.5)
        assert not deadline.allows(1.5)

    def test_zero_budget_starts_expired(self):
        assert Deadline(0.0, clock=FakeClock()).expired

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0, clock=FakeClock())

    def test_as_timeout(self):
        clock = FakeClock()
        assert Deadline.never(clock=clock).as_timeout() is None
        assert Deadline.never(clock=clock).as_timeout(cap=3.0) == 3.0
        assert Deadline(1.0, clock=clock).as_timeout(cap=5.0) == 1.0


class TestExecutorDeadline:
    def stage(self, system, words=(3, 4)):
        dbc = system.pim_dbc()
        adder = MultiOperandAdder(dbc)
        adder.stage_words(list(words), 8, zero_extend_to=16)
        return dbc

    def test_clean_op_ignores_deadline(self):
        system = make_system(policy=RetryPolicy())
        self.stage(system)
        clock = FakeClock()
        result = system.execute(
            add_instruction(), deadline=Deadline(10.0, clock=clock)
        )
        assert result.values[0] == 7

    def test_expired_budget_stops_retries(self):
        # rate 0.6 / seed 3 needs a retry (see test_resilience); with
        # the budget already gone by attempt 2 the executor must stop.
        system = make_system(
            rate=0.6, seed=3,
            policy=RetryPolicy(max_attempts=2, escalation_nmr=3),
        )
        dbc = self.stage(system)
        snapshot_before = dbc.snapshot()
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(1.0)  # budget gone before the first retry
        with pytest.raises(BudgetExhaustedError):
            system.execute(add_instruction(), deadline=deadline)
        stats = system.executor.stats
        assert stats.budget_exhausted == 1
        assert stats.retries == 0
        # Never torn mid-attempt: the staged operands are exactly as
        # they were before the expired execution started.
        assert dbc.snapshot() == snapshot_before

    def test_budget_exhaustion_is_not_a_device_fault(self):
        system = make_system(
            rate=0.6, seed=3,
            policy=RetryPolicy(max_attempts=2, escalation_nmr=3),
        )
        self.stage(system)
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(1.0)
        with pytest.raises(BudgetExhaustedError):
            system.execute(add_instruction(), deadline=deadline)
        report = system.health.report()
        key = (0, 0, 0, 0)
        assert key not in report or report[key].uncorrectables == 0

    def test_generous_budget_allows_full_ladder(self):
        system = make_system(
            rate=0.8, seed=2,
            policy=RetryPolicy(max_attempts=2, escalation_nmr=3),
        )
        self.stage(system)
        clock = FakeClock()
        system.execute(
            add_instruction(), deadline=Deadline(100.0, clock=clock)
        )
        stats = system.executor.stats
        assert stats.escalations == 1
        assert stats.budget_exhausted == 0

    def test_uncorrectable_still_wins_over_budget(self):
        # A device verdict reached within budget is reported as the
        # device verdict, not converted into a deadline error.
        policy = RetryPolicy(
            max_attempts=2, escalation_nmr=3,
            degrade_after=1, fail_after=2,
        )
        system = make_system(rate=0.6, seed=1, policy=policy)
        self.stage(system)
        with pytest.raises(UncorrectableFaultError):
            system.execute(
                add_instruction(),
                deadline=Deadline(100.0, clock=FakeClock()),
            )
        assert system.executor.stats.budget_exhausted == 0
