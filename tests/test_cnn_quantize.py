"""Tests for BWN/TWN weight quantization."""

import numpy as np
import pytest

from repro.workloads.cnn.quantize import (
    binarize,
    quantization_error,
    ternarize,
)


class TestTernarize:
    def test_levels_are_ternary(self):
        rng = np.random.default_rng(5)
        q = ternarize(rng.normal(size=(3, 3)))
        assert set(np.unique(q.levels)) <= {-1, 0, 1}

    def test_large_weights_survive(self):
        kernel = np.array([[5.0, 0.01], [-5.0, 0.02]])
        q = ternarize(kernel)
        assert q.levels[0, 0] == 1
        assert q.levels[1, 0] == -1
        assert q.levels[0, 1] == 0

    def test_error_smaller_than_binary_for_sparse_kernels(self):
        rng = np.random.default_rng(7)
        # Kernels with many near-zero weights favour the ternary form.
        kernel = rng.normal(size=(5, 5)) * (rng.random((5, 5)) > 0.6)
        t_err = quantization_error(kernel, ternarize(kernel))
        b_err = quantization_error(kernel, binarize(kernel))
        assert t_err < b_err

    def test_pim_ternary_conv_consumes_levels(self):
        from repro.workloads.cnn.inference import PimCnnEngine

        rng = np.random.default_rng(9)
        kernel = rng.normal(size=(3, 3))
        q = ternarize(kernel)
        image = rng.integers(0, 50, (5, 5))
        engine = PimCnnEngine()
        got = engine.ternary_conv2d(image, q.levels.astype(np.int64))
        want = np.zeros((3, 3), dtype=np.int64)
        for i in range(3):
            for j in range(3):
                want[i, j] = int(
                    (image[i : i + 3, j : j + 3] * q.levels).sum()
                )
        assert np.array_equal(got, want)

    def test_validation(self):
        with pytest.raises(ValueError):
            ternarize(np.array([]))
        with pytest.raises(ValueError):
            ternarize(np.ones((2, 2)), threshold_factor=0)


class TestBinarize:
    def test_levels_are_binary(self):
        rng = np.random.default_rng(6)
        q = binarize(rng.normal(size=(4, 4)))
        assert set(np.unique(q.levels)) <= {0, 1}

    def test_scale_is_mean_magnitude(self):
        kernel = np.array([[2.0, -4.0]])
        assert binarize(kernel).scale == pytest.approx(3.0)

    def test_error_bounded_for_positive_kernels(self):
        rng = np.random.default_rng(8)
        kernel = np.abs(rng.normal(size=(4, 4))) + 0.5
        assert quantization_error(kernel, binarize(kernel)) < 0.6

    def test_zero_kernel_error(self):
        kernel = np.zeros((2, 2))
        assert quantization_error(kernel, binarize(kernel)) == 0.0
