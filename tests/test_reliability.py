"""Unit tests for the reliability models (Table V)."""

import pytest

from repro.reliability.nmr_analysis import (
    nmr_error_probability,
    vote_circuit_error,
)
from repro.reliability.op_error import (
    OperationReliability,
    add_error_probability,
    multiply_error_probability,
    multiply_profile,
)
from repro.reliability.tr_faults import (
    boundary_error_probability,
    op_error_probability,
    sensitive_boundaries,
)


class TestBoundaryModel:
    def test_table5_and_row(self):
        # Paper: AND/OR/C' per-bit = 3.3e-7 / 2.0e-7 / 1.4e-7.
        assert op_error_probability("and", 3) == pytest.approx(1e-6 / 3)
        assert op_error_probability("and", 5) == pytest.approx(1e-6 / 5)
        assert op_error_probability("and", 7) == pytest.approx(1e-6 / 7)

    def test_or_matches_and(self):
        for trd in (3, 5, 7):
            assert op_error_probability("or", trd) == pytest.approx(
                op_error_probability("and", trd)
            )

    def test_table5_xor_row(self):
        # XOR flips at every boundary: 1.0e-6 regardless of TRD.
        for trd in (3, 5, 7):
            assert op_error_probability("xor", trd) == pytest.approx(1e-6)

    def test_table5_carry_row(self):
        # Paper: C per-bit = 3.3e-7 / 4.0e-7 / 4.3e-7.
        assert op_error_probability("carry", 3) == pytest.approx(1e-6 / 3)
        assert op_error_probability("carry", 5) == pytest.approx(2e-6 / 5)
        assert op_error_probability("carry", 7) == pytest.approx(3e-6 / 7)

    def test_cprime_one_boundary(self):
        for trd in (5, 7):
            assert op_error_probability("cprime", trd) == pytest.approx(
                1e-6 / trd
            )

    def test_sensitive_boundaries(self):
        assert sensitive_boundaries([0, 0, 0, 1]) == 1
        assert sensitive_boundaries([0, 1, 0, 1]) == 3

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            op_error_probability("nope", 7)

    def test_boundary_probability_validation(self):
        with pytest.raises(ValueError):
            boundary_error_probability([1])


class TestOperationErrors:
    def test_table5_add_row(self):
        # Paper: 8.0e-6 for 8-bit add, independent of TRD.
        assert add_error_probability(8) == pytest.approx(8e-6, rel=1e-3)

    def test_table5_multiply_row(self):
        # Paper: 4.1e-4 / 2.1e-4 / 7.6e-5 for TRD 3/5/7.
        assert multiply_error_probability(8, 3) == pytest.approx(4.1e-4, rel=0.15)
        assert multiply_error_probability(8, 5) == pytest.approx(2.1e-4, rel=0.15)
        assert multiply_error_probability(8, 7) == pytest.approx(7.6e-5, rel=0.15)

    def test_multiply_improves_with_trd(self):
        values = [multiply_error_probability(8, trd) for trd in (3, 5, 7)]
        assert values == sorted(values, reverse=True)

    def test_multiply_profile_rounds(self):
        assert multiply_profile(8, 7).reduction_rounds == 1
        assert multiply_profile(8, 3).reduction_rounds > multiply_profile(
            8, 5
        ).reduction_rounds

    def test_operation_reliability_bundle(self):
        rel = OperationReliability(trd=7)
        assert rel.row("xor") == pytest.approx(1e-6)
        assert rel.row("add") == pytest.approx(8e-6, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            add_error_probability(0)
        with pytest.raises(ValueError):
            multiply_profile(8, 4)


class TestNmr:
    def test_tmr_quadratic_suppression(self):
        q = 1e-6
        p = nmr_error_probability(3, q, n_bits=8)
        assert p == pytest.approx(8 * 3 * q**2, rel=1e-6)

    def test_higher_n_stronger(self):
        q = 1e-6
        values = [
            nmr_error_probability(n, q, n_bits=8) for n in (3, 5, 7)
        ]
        assert values == sorted(values, reverse=True)
        assert values[2] < 1e-20

    def test_vote_error_contributes(self):
        q = 1e-6
        with_vote = nmr_error_probability(3, q, vote_error=1e-7)
        without = nmr_error_probability(3, q)
        assert with_vote > without

    def test_vote_circuit_uses_carry_at_trd3(self):
        assert vote_circuit_error(3) == pytest.approx(
            op_error_probability("carry", 3)
        )
        assert vote_circuit_error(7) == pytest.approx(
            op_error_probability("cprime", 7)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            nmr_error_probability(4, 1e-6)
        with pytest.raises(ValueError):
            nmr_error_probability(3, 2.0)


class TestMonteCarloAgreement:
    """The analytic per-op models agree with fault-injected simulation."""

    def test_add_error_rate_scales_with_injected_rate(self):
        from repro.arch.dbc import DomainBlockCluster
        from repro.core.addition import MultiOperandAdder
        from repro.device.faults import FaultConfig, FaultInjector
        from repro.device.parameters import DeviceParameters

        p_inject = 0.02  # inflated so errors are observable
        trials = 300
        errors = 0
        injector = FaultInjector(FaultConfig(tr_fault_rate=p_inject, seed=11))
        for t in range(trials):
            dbc = DomainBlockCluster(
                tracks=16,
                domains=32,
                params=DeviceParameters(trd=7),
                injector=injector,
            )
            adder = MultiOperandAdder(dbc)
            words = [(t * 37 + i * 11) % 256 for i in range(5)]
            got = adder.add_words(words, 8, result_bits=8).value
            if got != sum(words) % 256:
                errors += 1
        observed = errors / trials
        predicted = add_error_probability(8, p_inject)
        # Loose band: faults can cancel or saturate, but the scale must
        # match the analytic model.
        assert 0.3 * predicted <= observed <= 1.7 * predicted
