"""Sampling profiler: phases, tags, folded stacks, exporters, ledger."""

import threading

import pytest

from repro.telemetry.context import TraceContext
from repro.telemetry.profiler import (
    PHASES,
    PHASE_COMPUTE,
    PHASE_SHIFT,
    PHASE_TR,
    PHASE_WRITE,
    PROFILE_SCHEMA,
    SamplingProfiler,
    classify_phase,
    fold_tracer,
    ledger_from_tracer,
    phase_of_stack,
    render_collapsed,
    self_weights,
    speedscope_document,
    tag_thread,
    thread_tag,
    top_frames,
)
from repro.telemetry.spans import Tracer


# ----------------------------------------------------------------------
# synthetic frames (the sys._current_frames() shape, but deterministic)


class _FakeCode:
    def __init__(self, filename, name):
        self.co_filename = filename
        self.co_name = name


class _FakeFrame:
    def __init__(self, filename, name, back=None):
        self.f_code = _FakeCode(filename, name)
        self.f_back = back


def chain(*frames):
    """Build a root-to-leaf frame chain; returns the leaf frame."""
    leaf = None
    for filename, name in frames:
        leaf = _FakeFrame(filename, name, back=leaf)
    return leaf


def device_leaf():
    return chain(
        ("/home/u/repo/src/repro/cli.py", "main"),
        ("/home/u/repo/src/repro/arch/dbc.py", "transverse_read"),
        ("/home/u/repo/src/repro/device/nanowire.py", "shift"),
    )


class TestPhaseClassification:
    @pytest.mark.parametrize(
        "function,phase",
        [
            ("transverse_read", PHASE_TR),
            ("transverse_read_digit", PHASE_TR),
            ("_sense", PHASE_TR),
            ("_record_tr", PHASE_TR),
            ("transverse_write", PHASE_WRITE),
            ("write_word", PHASE_WRITE),
            ("shift", PHASE_SHIFT),
            ("shift_to", PHASE_SHIFT),
            ("align_port", PHASE_SHIFT),
            ("multiply", None),
            ("main", None),
        ],
    )
    def test_classify_phase(self, function, phase):
        assert classify_phase(function) == phase

    def test_innermost_frame_wins(self):
        # write (outer) vs shift (inner): the leaf decides.
        assert phase_of_stack(["main", "write_word", "shift"]) == PHASE_SHIFT

    def test_no_device_frame_is_compute(self):
        assert phase_of_stack(["main", "run", "multiply"]) == PHASE_COMPUTE

    def test_phases_tuple_is_complete(self):
        assert set(PHASES) == {
            PHASE_SHIFT,
            PHASE_TR,
            PHASE_WRITE,
            PHASE_COMPUTE,
        }


class TestThreadTags:
    def test_tag_visible_only_inside_context(self):
        ident = threading.get_ident()
        assert thread_tag(ident) is None
        with tag_thread("storm"):
            assert thread_tag(ident) == "storm"
        assert thread_tag(ident) is None

    def test_nested_tags_restore_outer(self):
        ident = threading.get_ident()
        with tag_thread("outer"):
            with tag_thread("inner"):
                assert thread_tag(ident) == "inner"
            assert thread_tag(ident) == "outer"
        assert thread_tag(ident) is None

    def test_none_tag_is_a_no_op(self):
        ident = threading.get_ident()
        with tag_thread(None):
            assert thread_tag(ident) is None


class TestSampleOnce:
    def test_injected_frames_are_deterministic(self):
        profiler = SamplingProfiler(interval_s=0.001)
        frames = {9001: device_leaf()}
        for _ in range(5):
            assert profiler.sample_once(frames=frames) == 1
        assert profiler.samples == 5
        assert profiler.rounds == 5
        folded = profiler.folded()
        assert list(folded.values()) == [5]
        (stack,) = folded
        assert stack.endswith("repro/device/nanowire.py:shift")
        assert stack.startswith("repro/cli.py:main")

    def test_own_thread_is_excluded(self):
        profiler = SamplingProfiler(interval_s=0.001)
        frames = {
            threading.get_ident(): device_leaf(),
            424242: device_leaf(),
        }
        assert profiler.sample_once(frames=frames) == 1

    def test_phase_attribution(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.sample_once(frames={1: device_leaf()})
        profiler.sample_once(
            frames={1: chain(("/x/src/repro/pim/alu.py", "multiply"))}
        )
        phases = profiler.phases()
        assert phases[PHASE_SHIFT] == 1
        assert phases[PHASE_COMPUTE] == 1
        assert phases[PHASE_TR] == 0

    def test_tagged_thread_prefixes_stack_and_counts(self):
        profiler = SamplingProfiler(interval_s=0.001)
        done = threading.Event()
        release = threading.Event()
        captured = {}

        def worker():
            with tag_thread("storm"):
                captured["ident"] = threading.get_ident()
                done.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert done.wait(timeout=5)
            profiler.sample_once(
                frames={captured["ident"]: device_leaf()}
            )
        finally:
            release.set()
            thread.join()
        (stack,) = profiler.folded()
        assert stack.startswith("profile:storm;")
        assert profiler.tags() == {"storm": 1}

    def test_request_samples_join_via_tracer_snapshot(self):
        tracer = Tracer(clock=lambda: 0.0)
        profiler = SamplingProfiler(interval_s=0.001, tracer=tracer)
        context = TraceContext.root()
        opened = threading.Event()
        release = threading.Event()
        captured = {}

        def worker():
            with tracer.span("service.request") as span:
                span.context = context
                captured["ident"] = threading.get_ident()
                opened.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert opened.wait(timeout=5)
            profiler.sample_once(
                frames={captured["ident"]: device_leaf()}
            )
        finally:
            release.set()
            thread.join()
        document = profiler.document(mode="wall")
        assert document["schema"] == PROFILE_SCHEMA
        assert document["requests"][context.trace_id]["samples"] == 1

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0)


class TestWallSampling:
    def test_start_stop_round_trip(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        assert profiler.running
        with pytest.raises(RuntimeError):
            profiler.start()
        busy = threading.Event()

        def spin():
            while not busy.wait(0.001):
                pass

        thread = threading.Thread(target=spin)
        thread.start()
        try:
            deadline = threading.Event()
            deadline.wait(0.05)
        finally:
            busy.set()
            thread.join()
        profiler.stop()
        assert not profiler.running
        assert profiler.rounds >= 1


class TestFoldTracer:
    @staticmethod
    def build_tracer():
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("pim.mult") as outer:
            outer.annotate(cycles=100)
            with tracer.span("device.shift") as inner:
                inner.annotate(cycles=30)
        return tracer

    def test_self_weight_subtracts_children(self):
        folded = fold_tracer(self.build_tracer())
        assert folded == {
            "pim.mult": 70,
            "pim.mult;device.shift": 30,
        }

    def test_bit_identical_across_builds(self):
        one = fold_tracer(self.build_tracer())
        two = fold_tracer(self.build_tracer())
        assert render_collapsed(one) == render_collapsed(two)

    def test_child_exceeding_parent_clamps_to_zero(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("outer") as outer:
            outer.annotate(cycles=10)
            with tracer.span("inner") as inner:
                inner.annotate(cycles=25)
        folded = fold_tracer(tracer)
        assert folded == {"outer;inner": 25}

    def test_device_counters_become_phase_stacks(self):
        from repro.telemetry.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        metrics.counter("device.shift.cycles").inc(40)
        metrics.counter("device.transverse_read.cycles").inc(7)
        metrics.counter("device.cycles").inc(47)  # 2 parts: ignored
        folded = fold_tracer(None, metrics)
        assert folded == {
            "phase:shift;device:shift": 40,
            "phase:tr;device:transverse_read": 7,
        }


class TestLedger:
    def test_parent_with_cycles_bills_once(self):
        tracer = Tracer(clock=lambda: 0.0)
        context = TraceContext.root()
        span = tracer.begin("service.request", context=context)
        with tracer.span("pim.add") as outer:
            outer.context = context.child()
            outer.annotate(cycles=50, energy_pj=2.5)
            with tracer.span("device.shift") as inner:
                inner.annotate(cycles=50, energy_pj=2.5)
        tracer.finish(span)
        ledger = ledger_from_tracer(tracer)
        entry = ledger[context.trace_id]
        # The inner 50 cycles must not double-count under the outer.
        assert entry["sim_cycles"] == 50
        assert entry["sim_energy_pj"] == 2.5
        assert entry["spans"] == 3

    def test_traces_are_separate(self):
        tracer = Tracer(clock=lambda: 0.0)
        for cycles in (10, 20):
            context = TraceContext.root()
            span = tracer.begin("req", context=context)
            span.annotate(cycles=cycles)
            tracer.finish(span)
        ledger = ledger_from_tracer(tracer)
        assert sorted(e["sim_cycles"] for e in ledger.values()) == [10, 20]


class TestExporters:
    FOLDED = {"a;b": 3, "a;c": 1, "a": 2}

    def test_render_collapsed_is_sorted_and_stable(self):
        text = render_collapsed(self.FOLDED)
        assert text == "a 2\na;b 3\na;c 1\n"
        assert render_collapsed(dict(reversed(self.FOLDED.items()))) == text

    def test_self_weights_bill_the_leaf(self):
        assert self_weights(self.FOLDED) == {"a": 2, "b": 3, "c": 1}

    def test_top_frames_orders_by_weight_then_name(self):
        assert top_frames({"x": 2, "y": 2, "z": 5}, limit=2) == [
            ("z", 5),
            ("x", 2),
        ]

    def test_speedscope_structure(self):
        doc = speedscope_document(self.FOLDED, name="t", interval_s=0.01)
        assert doc["profiles"][0]["type"] == "sampled"
        assert doc["profiles"][0]["unit"] == "seconds"
        names = [f["name"] for f in doc["shared"]["frames"]]
        assert names == ["a", "b", "c"]  # sorted-stack first appearance
        assert doc["profiles"][0]["samples"] == [[0], [0, 1], [0, 2]]
        assert doc["profiles"][0]["weights"] == pytest.approx(
            [0.02, 0.03, 0.01]
        )
        assert doc["profiles"][0]["endValue"] == pytest.approx(0.06)

    def test_speedscope_unitless_without_interval(self):
        doc = speedscope_document(self.FOLDED)
        assert doc["profiles"][0]["unit"] == "none"
        assert doc["profiles"][0]["weights"] == [2, 3, 1]
