"""Tests for the background scrub engine and the fault-storm acceptance
scenario: proactive scrubbing plus the adaptive protection ladder keep a
campaign correct while the bare pipeline corrupts."""

import pytest

from repro import CoruscantSystem, FaultConfig, MemoryGeometry
from repro.reliability.campaign import (
    CampaignConfig,
    run_recovery_comparison,
)
from repro.resilience import ScrubEngine, ScrubStats


def make_system(shift_rate=0.0, seed=0, **kwargs):
    return CoruscantSystem(
        trd=7,
        geometry=MemoryGeometry(tracks_per_dbc=16),
        fault_config=FaultConfig(shift_fault_rate=shift_rate, seed=seed),
        **kwargs,
    )


def misalign_storage_dbc(system):
    """Shift a storage DBC around under the system's fault injector.

    Callers construct the system with ``shift_rate=1.0`` so the two
    commanded steps are guaranteed to knock tracks off position.
    """
    dbc = system.memory.bank(0).subarray(0).tile(0).dbc(1)
    dbc.poke_row(2, [1] * dbc.tracks)
    dbc.shift(1, 2)
    assert dbc.misaligned_tracks
    return dbc


class TestScrubEngine:
    def test_interval_clock_triggers_pass(self):
        system = make_system()
        scrubber = ScrubEngine(system.memory, interval=4)
        for _ in range(3):
            scrubber.on_ops(1)
        assert scrubber.stats.passes == 0
        scrubber.on_ops(1)
        assert scrubber.stats.passes == 1
        scrubber.on_ops(7)  # bursts past the interval still fire once
        assert scrubber.stats.passes == 2

    def test_invalid_interval_rejected(self):
        system = make_system()
        with pytest.raises(ValueError):
            ScrubEngine(system.memory, interval=0)

    def test_pass_repairs_misaligned_dbc(self):
        system = make_system(shift_rate=1.0)
        dbc = misalign_storage_dbc(system)
        scrubber = ScrubEngine(system.memory, interval=1)
        found = scrubber.run_pass()
        assert [key for key, _ in found] == [(0, 0, 0, 1)]
        assert scrubber.stats.proactive_catches >= 1
        assert scrubber.stats.repaired_tracks >= 1
        assert scrubber.stats.misaligned_dbcs == 1
        assert scrubber.stats.scrub_cycles > 0
        assert dbc.position_error_check() == []
        # A clean follow-up pass finds nothing new.
        assert scrubber.run_pass() == []
        assert scrubber.stats.proactive_catches == len(found[0][1])

    def test_report_only_mode_leaves_misalignment(self):
        system = make_system(shift_rate=1.0)
        dbc = misalign_storage_dbc(system)
        scrubber = ScrubEngine(system.memory, interval=1, repair=False)
        found = scrubber.run_pass()
        assert found
        assert scrubber.stats.repaired_tracks == 0
        assert dbc.misaligned_tracks  # still broken, by request

    def test_repairs_are_transients_not_degradation(self):
        system = make_system(shift_rate=1.0)
        misalign_storage_dbc(system)
        scrubber = ScrubEngine(
            system.memory, interval=1, registry=system.health
        )
        scrubber.run_pass()
        record = system.health.report()[(0, 0, 0, 1)]
        assert record.transients == 1
        assert record.uncorrectables == 0

    def test_state_roundtrip(self):
        system = make_system()
        scrubber = ScrubEngine(system.memory, interval=4)
        scrubber.on_ops(4)
        scrubber.on_ops(3)
        saved = scrubber.state()
        other = ScrubEngine(system.memory, interval=4)
        other.restore_state(saved)
        assert other.stats == scrubber.stats
        other.on_ops(1)  # the 3 pending ops survived the round trip
        assert other.stats.passes == scrubber.stats.passes + 1

    def test_system_wires_scrubber_into_controller(self):
        from repro.core.isa import Address

        system = make_system(scrub_interval=2)
        assert system.scrubber is not None
        address = Address(bank=0, subarray=0, tile=0, dbc=1, row=0)
        for _ in range(4):  # controller ops drive the scrub clock
            system.controller.read(address)
        assert system.scrubber.stats.passes == 2
        assert system.scrubber.stats.dbcs_checked > 0

    def test_system_without_interval_has_no_scrubber(self):
        assert make_system().scrubber is None

    def test_stats_copy_is_independent(self):
        stats = ScrubStats(passes=2, proactive_catches=5)
        clone = stats.copy()
        clone.passes = 99
        assert stats.passes == 2


class TestFaultStormAcceptance:
    """ISSUE acceptance: under a fault storm the protected campaign
    stays correct while the bare pipeline corrupts, with nonzero
    proactive catches and at least one full escalation cycle."""

    @pytest.fixture(scope="class")
    def runs(self):
        # Seed is pinned: at these rates a 3-read vote mis-corrects
        # (two same-direction faults) roughly every few thousand TRs,
        # so some seeds show one undetected escape — honest physics,
        # but not what this test is probing.
        config = CampaignConfig(
            ops=240,
            tr_fault_rate=1e-2,
            shift_fault_rate=1e-3,
            seed=0,
            recovery=True,
            adaptive=True,
            scrub_interval=16,
            storm_ops=120,
            calm_tr_fault_rate=1e-5,
            storage_rows=4,
        )
        return run_recovery_comparison(config)

    def test_protected_run_is_fully_correct(self, runs):
        protected = runs["recovery_on"]
        assert protected.completed
        assert protected.escaped == 0
        assert protected.uncorrectable == 0

    def test_bare_run_corrupts(self, runs):
        bare = runs["recovery_off"]
        assert bare.escaped > 0
        assert bare.wrong_results > runs["recovery_on"].wrong_results

    def test_scrubber_caught_faults_proactively(self, runs):
        scrub = runs["recovery_on"].scrub
        assert scrub["passes"] > 0
        assert scrub["proactive_catches"] > 0
        assert scrub["repaired_tracks"] > 0

    def test_ladder_escalated_and_deescalated(self, runs):
        protection = runs["recovery_on"].protection
        assert protection["escalations"] >= 1
        assert protection["deescalations"] >= 1
        # The storm drives the PIM cluster all the way up to NMR and
        # the calm phase brings it back down.
        names = [(src, dst) for _, _, src, dst in protection["transitions"]]
        assert ("VOTED", "NMR") in names
        assert ("VOTED", "BARE") in names

    def test_summary_reports_both_layers(self, runs):
        protected = runs["recovery_on"]
        summary = protected.summary()
        assert summary["scrub"]["proactive_catches"] > 0
        assert summary["protection"]["escalations"] >= 1
        assert (
            protected.wrong_results
            == summary["escaped"] + summary["storage_wrong"]
        )
