"""Unit tests for fault injection."""

import pytest

from repro.device.faults import FaultConfig, FaultInjector


class TestFaultConfig:
    def test_defaults_fault_free(self):
        config = FaultConfig()
        assert config.tr_fault_rate == 0.0
        assert config.shift_fault_rate == 0.0

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultConfig(tr_fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(shift_fault_rate=-0.1)


class TestTrPerturbation:
    def test_fault_free_identity(self):
        injector = FaultInjector()
        for level in range(8):
            assert injector.perturb_tr_level(level, 7) == level

    def test_always_faulting_moves_one_level(self):
        injector = FaultInjector(FaultConfig(tr_fault_rate=1.0, seed=3))
        for level in range(8):
            got = injector.perturb_tr_level(level, 7)
            assert abs(got - level) == 1
            assert 0 <= got <= 7

    def test_clamps_at_bounds(self):
        injector = FaultInjector(FaultConfig(tr_fault_rate=1.0, seed=1))
        for _ in range(20):
            assert injector.perturb_tr_level(0, 7) == 1
            assert injector.perturb_tr_level(7, 7) == 6

    def test_fault_rate_statistics(self):
        injector = FaultInjector(FaultConfig(tr_fault_rate=0.25, seed=42))
        faults = sum(
            1 for _ in range(4000) if injector.perturb_tr_level(3, 7) != 3
        )
        assert 800 <= faults <= 1200  # ~1000 expected

    def test_counter_increments(self):
        injector = FaultInjector(FaultConfig(tr_fault_rate=1.0))
        injector.perturb_tr_level(3, 7)
        assert injector.tr_faults_injected == 1

    def test_reproducible_with_seed(self):
        a = FaultInjector(FaultConfig(tr_fault_rate=0.5, seed=9))
        b = FaultInjector(FaultConfig(tr_fault_rate=0.5, seed=9))
        seq_a = [a.perturb_tr_level(3, 7) for _ in range(50)]
        seq_b = [b.perturb_tr_level(3, 7) for _ in range(50)]
        assert seq_a == seq_b


class TestShiftPerturbation:
    def test_fault_free_identity(self):
        injector = FaultInjector()
        assert injector.perturb_shift(1) == 1
        assert injector.perturb_shift(-1) == -1

    def test_faults_are_over_or_under(self):
        injector = FaultInjector(FaultConfig(shift_fault_rate=1.0, seed=5))
        outcomes = {injector.perturb_shift(1) for _ in range(100)}
        assert outcomes <= {0, 2}
        assert injector.shift_faults_injected == 100
