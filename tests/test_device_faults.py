"""Unit tests for fault injection."""

import pytest

from repro.device.faults import FaultConfig, FaultInjector


class TestFaultConfig:
    def test_defaults_fault_free(self):
        config = FaultConfig()
        assert config.tr_fault_rate == 0.0
        assert config.shift_fault_rate == 0.0

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultConfig(tr_fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(shift_fault_rate=-0.1)


class TestTrPerturbation:
    def test_fault_free_identity(self):
        injector = FaultInjector()
        for level in range(8):
            assert injector.perturb_tr_level(level, 7) == level

    def test_always_faulting_moves_one_level(self):
        injector = FaultInjector(FaultConfig(tr_fault_rate=1.0, seed=3))
        for level in range(8):
            got = injector.perturb_tr_level(level, 7)
            assert abs(got - level) == 1
            assert 0 <= got <= 7

    def test_clamps_at_bounds(self):
        injector = FaultInjector(FaultConfig(tr_fault_rate=1.0, seed=1))
        for _ in range(20):
            assert injector.perturb_tr_level(0, 7) == 1
            assert injector.perturb_tr_level(7, 7) == 6

    def test_fault_rate_statistics(self):
        injector = FaultInjector(FaultConfig(tr_fault_rate=0.25, seed=42))
        faults = sum(
            1 for _ in range(4000) if injector.perturb_tr_level(3, 7) != 3
        )
        assert 800 <= faults <= 1200  # ~1000 expected

    def test_counter_increments(self):
        injector = FaultInjector(FaultConfig(tr_fault_rate=1.0))
        injector.perturb_tr_level(3, 7)
        assert injector.tr_faults_injected == 1

    def test_reproducible_with_seed(self):
        a = FaultInjector(FaultConfig(tr_fault_rate=0.5, seed=9))
        b = FaultInjector(FaultConfig(tr_fault_rate=0.5, seed=9))
        seq_a = [a.perturb_tr_level(3, 7) for _ in range(50)]
        seq_b = [b.perturb_tr_level(3, 7) for _ in range(50)]
        assert seq_a == seq_b


class TestShiftPerturbation:
    def test_fault_free_identity(self):
        injector = FaultInjector()
        assert injector.perturb_shift(1) == 1
        assert injector.perturb_shift(-1) == -1

    def test_faults_are_over_or_under(self):
        injector = FaultInjector(FaultConfig(shift_fault_rate=1.0, seed=5))
        outcomes = {injector.perturb_shift(1) for _ in range(100)}
        assert outcomes <= {0, 2}
        assert injector.shift_faults_injected == 100


class TestIntrinsicRate:
    """Satellite: one source of truth for the paper's intrinsic TR rate."""

    def test_intrinsic_config_uses_tr_faults_constant(self):
        from repro.reliability.tr_faults import TR_FAULT_RATE

        config = FaultConfig.intrinsic(seed=4)
        assert config.tr_fault_rate == TR_FAULT_RATE
        assert config.shift_fault_rate == 0.0
        assert config.seed == 4

    def test_device_parameters_share_the_constant(self):
        from repro.device.parameters import DeviceParameters
        from repro.reliability.tr_faults import TR_FAULT_RATE

        assert DeviceParameters().tr_fault_rate == TR_FAULT_RATE


class TestRateSwitchAndState:
    def test_set_rates_preserves_rng_stream(self):
        reference = FaultInjector(FaultConfig(tr_fault_rate=0.5, seed=6))
        switched = FaultInjector(FaultConfig(tr_fault_rate=0.5, seed=6))
        for _ in range(10):
            reference.perturb_tr_level(3, 7)
            switched.perturb_tr_level(3, 7)
        switched.set_rates(tr_fault_rate=0.5)  # same rate, fresh config
        seq_a = [reference.perturb_tr_level(3, 7) for _ in range(20)]
        seq_b = [switched.perturb_tr_level(3, 7) for _ in range(20)]
        assert seq_a == seq_b

    def test_set_rates_changes_only_given_rates(self):
        injector = FaultInjector(
            FaultConfig(tr_fault_rate=0.5, shift_fault_rate=0.25, seed=0)
        )
        injector.set_rates(tr_fault_rate=0.0)
        assert injector.config.tr_fault_rate == 0.0
        assert injector.config.shift_fault_rate == 0.25

    def test_state_roundtrip_resumes_stream_and_counters(self):
        injector = FaultInjector(
            FaultConfig(tr_fault_rate=0.5, shift_fault_rate=0.5, seed=8)
        )
        for _ in range(25):
            injector.perturb_tr_level(3, 7)
            injector.perturb_shift(1)
        saved = injector.state()
        clone = FaultInjector(
            FaultConfig(tr_fault_rate=0.5, shift_fault_rate=0.5, seed=999)
        )
        clone.restore_state(saved)
        assert clone.tr_faults_injected == injector.tr_faults_injected
        assert clone.shift_faults_injected == injector.shift_faults_injected
        seq_a = [injector.perturb_tr_level(3, 7) for _ in range(30)]
        seq_b = [clone.perturb_tr_level(3, 7) for _ in range(30)]
        assert seq_a == seq_b
