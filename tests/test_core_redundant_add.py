"""Tests for the per-step vs per-result TMR voting tradeoff."""

import pytest

from repro.core.redundant_add import (
    RedundantAdder,
    RedundantAddResult,
    VotingMode,
)
from repro.device.faults import FaultConfig


class TestFaultFree:
    @pytest.mark.parametrize("mode", list(VotingMode))
    def test_correct_sum(self, mode):
        adder = RedundantAdder(n=3)
        result = adder.add_words([13, 200, 7, 99, 55], 8, mode=mode)
        assert result.value == (13 + 200 + 7 + 99 + 55) % 256

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_all_redundancy_degrees(self, n):
        adder = RedundantAdder(n=n)
        result = adder.add_words([100, 50], 8)
        assert result.value == 150

    def test_per_step_costs_more_cycles(self):
        per_result = RedundantAdder(n=3).add_words(
            [1, 2, 3], 8, mode=VotingMode.PER_RESULT
        )
        per_step = RedundantAdder(n=3).add_words(
            [1, 2, 3], 8, mode=VotingMode.PER_STEP
        )
        assert per_step.cycles > per_result.cycles
        assert per_step.votes == 8
        assert per_result.votes == 1

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            RedundantAdder(n=4)


class TestUnderFaults:
    def _error_rate(self, mode: VotingMode, rate: float, trials: int) -> float:
        errors = 0
        for t in range(trials):
            adder = RedundantAdder(
                n=3,
                fault_config=FaultConfig(tr_fault_rate=rate, seed=t),
            )
            words = [(t * 17 + i * 29) % 256 for i in range(5)]
            got = adder.add_words(words, 8, mode=mode).value
            if got != sum(words) % 256:
                errors += 1
        return errors / trials

    def test_per_step_scrubs_better(self):
        """Per-step voting stops carry-poisoning fault accumulation.

        At a heavy injected rate the per-result mode lets a corrupted
        carry propagate through a replica's remaining bits, so two
        replicas disagreeing anywhere downstream becomes likely;
        per-step scrubbing keeps replicas synchronized.
        """
        rate = 0.08
        per_result = self._error_rate(VotingMode.PER_RESULT, rate, 150)
        per_step = self._error_rate(VotingMode.PER_STEP, rate, 150)
        assert per_step <= per_result

    def test_both_correct_under_light_faults(self):
        for mode in VotingMode:
            assert self._error_rate(mode, 0.001, 60) <= 0.05


class TestResultType:
    def test_fields(self):
        result = RedundantAdder(n=3).add_words([1, 2], 8)
        assert isinstance(result, RedundantAddResult)
        assert result.cycles > 0
