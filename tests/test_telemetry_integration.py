"""End-to-end telemetry: system wiring, resilience spans, snapshots.

Covers the full plumbing: ``CoruscantSystem(telemetry=...)`` produces
nested span trees (facade > controller > core phases) with simulated
cycles/energy attributes, the resilience/scrub/breaker layers annotate
their verdicts, campaigns accept a hub, and every stats snapshot across
the stack is non-destructive (reading twice gives the same answer, and
mutating a returned dict never reaches back into the internals).
"""

import pytest

from repro import (
    CoruscantSystem,
    FaultConfig,
    MemoryGeometry,
    TelemetryHub,
)
from repro.core.isa import Address, CpimInstruction, CpimOp
from repro.telemetry.spans import NULL_TRACER


def _system(**kwargs):
    kwargs.setdefault("geometry", MemoryGeometry(tracks_per_dbc=64))
    return CoruscantSystem(**kwargs)


def _add_instruction(operands=2):
    address = Address(bank=0, subarray=0, tile=0, dbc=0, row=0)
    return CpimInstruction(
        op=CpimOp.ADD,
        blocksize=16,
        src=address,
        dest=address,
        operands=operands,
    )


def _stage_add(system, words=(13, 200)):
    from repro.core.addition import MultiOperandAdder

    dbc = system.pim_dbc()
    MultiOperandAdder(dbc).stage_words(list(words), 8, zero_extend_to=16)
    return dbc


# ----------------------------------------------------------------------
# system wiring


class TestSystemWiring:
    def test_telemetry_true_builds_a_hub(self):
        system = _system(telemetry=True)
        assert isinstance(system.telemetry, TelemetryHub)

    def test_telemetry_default_off_keeps_null_tracer(self):
        system = _system()
        assert system.telemetry is None
        dbc = system.pim_dbc()
        assert dbc.tracer is NULL_TRACER
        assert dbc.stats.sink is None
        system.multiply(7, 9, n_bits=8)  # runs without recording anything

    def test_mult_span_tree_nested_with_costs(self):
        system = _system(telemetry=True)
        result = system.multiply(173, 219, n_bits=8)
        tracer = system.telemetry.tracer
        (root,) = tracer.roots
        assert root.name == "pim.mult"
        assert root.attrs["cycles"] == result.cycles
        assert root.attrs["energy_pj"] > 0
        child_names = [c.name for c in root.children]
        assert child_names == [
            "mult.partial_products",
            "mult.reduction",
            "mult.final_add",
        ]
        final_add = root.children[2]
        assert final_add.children[0].name == "add.walk"
        # Phase cycles are real simulated costs that sum below the root.
        assert sum(
            c.attrs["cycles"] for c in root.children
        ) <= root.attrs["cycles"]

    def test_controller_dispatch_nests_cpim_under_resilience(self):
        system = _system(telemetry=True, resilience=True)
        _stage_add(system)
        result = system.execute(_add_instruction())
        tracer = system.telemetry.tracer
        (root,) = tracer.roots
        assert root.name == "resilience.op"
        assert root.attrs["verdict"] == "clean"
        assert root.attrs["attempts"] == 1
        (cpim,) = [c for c in root.children if c.name == "cpim.add"]
        assert cpim.attrs["cycles"] == result.cycles
        assert cpim.attrs["transverse_reads"] > 0
        assert cpim.children[0].name == "add.walk"

    def test_device_metrics_published_through_sink(self):
        system = _system(telemetry=True)
        system.multiply(173, 219, n_bits=8)
        counters = system.telemetry.metrics_dict()["counters"]
        assert counters["device.cycles"] > 0
        assert counters["device.energy_pj"] > 0
        assert counters["pim.mult.count"] == 1

    def test_memory_access_metrics_and_row_hits(self):
        system = _system(telemetry=True)
        address = Address(bank=0, subarray=0, tile=0, dbc=1, row=3)
        row = [0] * 64
        system.controller.write(address, row)
        assert system.controller.read(address) == row
        snapshot = system.telemetry.metrics_dict()
        assert snapshot["counters"]["mem.writes"] == 1
        assert snapshot["counters"]["mem.reads"] == 1
        assert snapshot["counters"]["mem.row_hits"] == 1
        assert snapshot["gauges"]["mem.row_buffer_hit_rate"] == 0.5

    def test_cpim_histograms_fed(self):
        system = _system(telemetry=True)
        _stage_add(system)
        system.execute(_add_instruction())
        hists = system.telemetry.metrics_dict()["histograms"]
        assert hists["cpim.tr_per_op"]["count"] == 1
        assert hists["cpim.op_cycles"]["count"] == 1

    def test_shared_hub_across_systems(self):
        hub = TelemetryHub()
        _system(telemetry=hub).multiply(3, 5, n_bits=8)
        _system(telemetry=hub).multiply(7, 9, n_bits=8)
        assert hub.metrics_dict()["counters"]["pim.mult.count"] == 2


# ----------------------------------------------------------------------
# resilience + scrub + breaker annotations


class TestResilienceTelemetry:
    def test_retry_verdict_and_instants_under_faults(self):
        system = _system(
            telemetry=True,
            resilience=True,
            fault_config=FaultConfig(tr_fault_rate=0.02, seed=3),
        )
        verdicts = set()
        for _ in range(40):
            _stage_add(system)
            try:
                system.execute(_add_instruction())
            except Exception:
                pass
        tracer = system.telemetry.tracer
        for root in tracer.roots:
            assert root.name == "resilience.op"
            verdicts.add(root.attrs.get("verdict"))
        assert "clean" in verdicts
        counters = system.telemetry.metrics_dict()["counters"]
        assert counters["resilience.ops"] == 40
        if system.executor.stats.retries:
            assert any(
                i["name"] == "resilience.retry" for i in tracer.instants
            )
            hist = system.telemetry.metrics_dict()["histograms"][
                "resilience.retry_depth"
            ]
            assert hist["max"] > 1

    def test_nmr_span_on_escalation(self):
        system = _system(
            telemetry=True,
            resilience=True,
            fault_config=FaultConfig(tr_fault_rate=0.30, seed=1),
        )
        for _ in range(20):
            _stage_add(system)
            try:
                system.execute(_add_instruction())
            except Exception:
                pass
        tracer = system.telemetry.tracer
        if system.executor.stats.escalations:
            nmr = tracer.find("resilience.nmr")
            assert nmr
            assert all("faults" in s.attrs or "error" in s.attrs for s in nmr)

    def test_scrub_pass_span_and_counters(self):
        system = _system(telemetry=True, scrub_interval=1)
        address = Address(bank=0, subarray=0, tile=0, dbc=1, row=0)
        system.controller.write(address, [0] * 64)
        system.controller.read(address)
        tracer = system.telemetry.tracer
        passes = tracer.find("scrub.pass")
        assert len(passes) == system.scrubber.stats.passes >= 1
        for span in passes:
            assert span.attrs["dbcs_checked"] >= 1
            assert "cycles" in span.attrs
        counters = system.telemetry.metrics_dict()["counters"]
        assert counters["scrub.passes"] == system.scrubber.stats.passes

    def test_breaker_transitions_published(self):
        system = _system(
            telemetry=True,
            resilience=True,
            adaptive=True,
            fault_config=FaultConfig(tr_fault_rate=0.30, seed=2),
        )
        for _ in range(60):
            _stage_add(system)
            try:
                system.execute(_add_instruction())
            except Exception:
                pass
        transitions = system.breaker.transitions
        if transitions:
            counters = system.telemetry.metrics_dict()["counters"]
            assert counters["breaker.transitions"] == len(transitions)
            tracer = system.telemetry.tracer
            assert len(tracer.find("breaker.transition")) == 0  # instants
            assert sum(
                1
                for i in tracer.instants
                if i["name"] == "breaker.transition"
            ) == len(transitions)


# ----------------------------------------------------------------------
# campaign plumbing


class TestCampaignTelemetry:
    def test_campaign_accepts_hub(self):
        from repro.reliability.campaign import (
            CampaignConfig,
            run_add_campaign,
        )

        hub = TelemetryHub()
        config = CampaignConfig(ops=10, tr_fault_rate=0.0, recovery=True)
        result = run_add_campaign(config, telemetry=hub)
        assert result.completed
        counters = hub.metrics_dict()["counters"]
        assert counters["resilience.ops"] == 10
        assert counters["cpim.add.count"] == 10
        assert hub.tracer.span_count() > 0

    def test_scheduler_publishes_queue_histogram(self):
        from repro.arch.scheduler import CommandScheduler, stream_from_counts
        from repro.arch.timing import DWM_DDR3_1600

        hub = TelemetryHub()
        scheduler = CommandScheduler(
            DWM_DDR3_1600, banks=4, telemetry=hub
        )
        stats = scheduler.run(stream_from_counts(50, banks=4, seed=1))
        snapshot = hub.metrics_dict()
        assert snapshot["counters"]["sched.requests"] == 50
        assert snapshot["histograms"]["sched.queue_cycles"]["count"] == 50
        assert snapshot["gauges"]["sched.row_hit_rate"] == pytest.approx(
            stats.hit_rate
        )


# ----------------------------------------------------------------------
# non-destructive snapshots (regression: reading stats must not reset)


class TestNonDestructiveSnapshots:
    def test_scrub_stats_snapshot_pure(self):
        system = _system(scrub_interval=1)
        address = Address(bank=0, subarray=0, tile=0, dbc=1, row=0)
        system.controller.write(address, [0] * 64)
        scrubber = system.scrubber
        first = scrubber.stats.as_dict()
        second = scrubber.stats.as_dict()
        assert first == second and first["passes"] >= 1
        first["passes"] = 999
        assert scrubber.stats.passes != 999
        state_a = scrubber.state()
        state_b = scrubber.state()
        assert state_a == state_b
        state_a["stats"]["passes"] = 999
        assert scrubber.stats.passes != 999

    def test_breaker_summary_and_serialize_pure(self):
        system = _system(
            resilience=True,
            adaptive=True,
            fault_config=FaultConfig(tr_fault_rate=0.3, seed=2),
        )
        for _ in range(30):
            _stage_add(system)
            try:
                system.execute(_add_instruction())
            except Exception:
                pass
        breaker = system.breaker
        assert breaker.summary() == breaker.summary()
        assert breaker.serialize() == breaker.serialize()
        summary = breaker.summary()
        summary["escalations"] = 999
        summary["levels"]["bogus"] = "NMR"
        assert breaker.summary()["escalations"] != 999
        assert "bogus" not in breaker.summary()["levels"]

    def test_executor_stats_snapshot_pure(self):
        system = _system(resilience=True)
        _stage_add(system)
        system.execute(_add_instruction())
        stats = system.executor.stats
        first = stats.as_dict()
        assert first == stats.as_dict()
        assert first["operations"] == 1
        assert first["faults_corrected"] == stats.faults_corrected
        first["operations"] = 999
        assert stats.operations == 1

    def test_device_stats_snapshot_pure(self):
        system = _system()
        system.multiply(173, 219, n_bits=8)
        stats = system.pim_dbc().stats
        first = stats.as_dict()
        assert first == stats.as_dict()
        first["op_counts"]["transverse_read"] = 999
        assert stats.count("transverse_read") != 999

    def test_controller_stats_snapshot_pure(self):
        system = _system()
        address = Address(bank=0, subarray=0, tile=0, dbc=1, row=0)
        system.controller.write(address, [0] * 64)
        system.controller.read(address)
        stats = system.controller.stats
        first = stats.as_dict()
        assert first == stats.as_dict()
        assert first["reads"] == 1 and first["writes"] == 1
        assert first["row_hits"] + first["row_misses"] == 2
        first["reads"] = 999
        assert stats.reads == 1

    def test_scheduler_stats_snapshot_pure(self):
        from repro.arch.scheduler import CommandScheduler, stream_from_counts
        from repro.arch.timing import DWM_DDR3_1600

        scheduler = CommandScheduler(DWM_DDR3_1600, banks=2)
        stats = scheduler.run(stream_from_counts(20, banks=2, seed=0))
        assert stats.as_dict() == stats.as_dict()
        snapshot = stats.as_dict()
        snapshot["requests"] = 999
        assert stats.requests == 20

    def test_metrics_and_trace_reads_repeatable(self):
        system = _system(telemetry=True, resilience=True)
        _stage_add(system)
        system.execute(_add_instruction())
        hub = system.telemetry
        assert hub.metrics_dict() == hub.metrics_dict()
        assert hub.chrome_trace() == hub.chrome_trace()
        assert hub.tracer.span_count() == hub.tracer.span_count()


# ----------------------------------------------------------------------
# zero overhead of the default null path


class TestNullOverhead:
    def test_core_units_untouched_without_telemetry(self):
        # The seed's Table III numbers must be reproduced bit-for-bit on
        # the un-instrumented path: same cycles, no spans, no sinks.
        from repro.arch.dbc import DomainBlockCluster
        from repro.core.multiplication import Multiplier
        from repro.device.parameters import DeviceParameters

        dbc = DomainBlockCluster(
            tracks=64, params=DeviceParameters(trd=7), pim_enabled=True
        )
        assert dbc.tracer is NULL_TRACER
        result = Multiplier(dbc).multiply(173, 219, n_bits=8)
        assert result.cycles == 64
        assert NULL_TRACER.span_count() == 0

    def test_checkpointed_campaign_unaffected_by_telemetry_fields(self):
        # Resume stays bit-identical with the extended DeviceStats.
        from repro.reliability.campaign import (
            CampaignConfig,
            run_add_campaign,
        )

        config = CampaignConfig(ops=20, tr_fault_rate=0.01, seed=5)
        full = run_add_campaign(config)
        assert full.completed
