"""TraceContext minting, lineage, and ambient propagation."""

import threading

from repro.telemetry import (
    TraceContext,
    current_context,
    mint_request_id,
    mint_span_id,
    mint_trace_id,
    use_context,
)
from repro.utils.streams import process_salt


class TestMinting:
    def test_trace_ids_are_unique_and_salted(self):
        ids = {mint_trace_id() for _ in range(100)}
        assert len(ids) == 100
        salt = f"{process_salt():08x}"
        assert all(t.startswith(salt) for t in ids)

    def test_span_ids_are_unique(self):
        ids = {mint_span_id() for _ in range(100)}
        assert len(ids) == 100

    def test_request_ids_are_positive_salted_ints(self):
        first = mint_request_id()
        second = mint_request_id()
        assert first > 0 and second > 0
        assert first != second
        # The high bits carry the per-process salt, so ids minted
        # after a restart cannot collide with ids from this process.
        assert first >> 24 == process_salt()
        assert second >> 24 == process_salt()

    def test_request_ids_unique_across_threads(self):
        seen = []
        lock = threading.Lock()

        def mint(n=200):
            local = [mint_request_id() for _ in range(n)]
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=mint) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == len(seen)


class TestLineage:
    def test_root_has_no_parent(self):
        root = TraceContext.root()
        assert root.parent_id is None
        assert root.trace_id and root.span_id

    def test_child_shares_trace_and_links_parent(self):
        root = TraceContext.root()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        grandchild = child.child()
        assert grandchild.trace_id == root.trace_id
        assert grandchild.parent_id == child.span_id

    def test_as_dict_schema(self):
        root = TraceContext.root()
        d = root.child().as_dict()
        assert d == {
            "trace_id": root.trace_id,
            "span_id": d["span_id"],
            "parent_span_id": root.span_id,
        }


class TestAmbientPropagation:
    def test_default_is_none(self):
        assert current_context() is None

    def test_use_context_binds_and_restores(self):
        ctx = TraceContext.root()
        with use_context(ctx):
            assert current_context() is ctx
            inner = ctx.child()
            with use_context(inner):
                assert current_context() is inner
            assert current_context() is ctx
        assert current_context() is None

    def test_use_context_none_is_passthrough(self):
        ctx = TraceContext.root()
        with use_context(ctx):
            with use_context(None):
                assert current_context() is ctx

    def test_contexts_are_thread_local(self):
        ctx = TraceContext.root()
        observed = []

        def probe():
            observed.append(current_context())

        with use_context(ctx):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert observed == [None]
