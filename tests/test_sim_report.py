"""Tests for the markdown report generator."""

from repro.sim.report import generate_report


class TestReport:
    def test_all_sections_present(self):
        report = generate_report()
        for section in (
            "Table I", "Table III", "Figs. 10", "Fig. 12",
            "Table IV", "Table V", "Table VI",
        ):
            assert section in report

    def test_contains_paper_anchors(self):
        report = generate_report()
        assert "3.7" in report  # Table I ADD2
        assert "gemm" in report  # Polybench kernels
        assert "alexnet" in report

    def test_valid_markdown_tables(self):
        report = generate_report()
        for line in report.splitlines():
            if line.startswith("|") and not line.startswith("|-"):
                assert line.endswith("|"), line

    def test_cli_report_command(self, capsys):
        from repro.cli import main

        assert main(["report"]) == 0
        assert "CORUSCANT reproduction report" in capsys.readouterr().out
