"""Tests for the markdown report generator."""

from repro.sim.report import generate_report


class TestReport:
    def test_all_sections_present(self):
        report = generate_report()
        for section in (
            "Table I", "Table III", "Figs. 10", "Fig. 12",
            "Table IV", "Table V", "Table VI",
        ):
            assert section in report

    def test_contains_paper_anchors(self):
        report = generate_report()
        assert "3.7" in report  # Table I ADD2
        assert "gemm" in report  # Polybench kernels
        assert "alexnet" in report

    def test_valid_markdown_tables(self):
        report = generate_report()
        for line in report.splitlines():
            if line.startswith("|") and not line.startswith("|-"):
                assert line.endswith("|"), line

    def test_cli_report_command_is_the_scoreboard(self, capsys):
        # `repro report` now renders the fidelity scoreboard; the
        # long-form dump tested above remains part of `repro all`.
        from repro.cli import main

        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "CORUSCANT reproduction-fidelity scoreboard" in out

    def test_paper_constants_come_from_obs_registry(self):
        from repro.obs.registry import REFERENCES_BY_NAME
        from repro.sim.report import PAPER_AREA, PAPER_POLYBENCH

        assert PAPER_AREA["ADD2"] == REFERENCES_BY_NAME["table1.ADD2"].paper
        assert (
            PAPER_POLYBENCH["avg_energy_reduction"]
            == REFERENCES_BY_NAME["fig11.avg_energy_reduction"].paper
        )
