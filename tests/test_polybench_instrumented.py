"""The analytic profile formulas agree with instrumented loop nests.

This is the validation the paper got from its pintool: execute the real
loop nests at small sizes, count every multiply/add, and compare with
the closed-form profiles that drive Figs. 10-11.
"""

import numpy as np
import pytest

from repro.workloads.polybench import kernel_by_name
from repro.workloads.polybench_ref import INSTRUMENTED, run_instrumented

SMALL_DIMS = {
    "gemm": dict(ni=6, nj=7, nk=8),
    "atax": dict(m=9, n=11),
    "mvt": dict(n=10),
    "gesummv": dict(n=9),
    "syrk": dict(n=7, m=5),
    "doitgen": dict(nr=3, nq=4, np=5),
    "2mm": dict(ni=5, nj=6, nk=7, nl=8),
    "bicg": dict(m=9, n=11),
}


class TestProfilesMatchInstrumentation:
    @pytest.mark.parametrize("name", sorted(INSTRUMENTED))
    def test_mult_counts_match(self, name):
        dims = SMALL_DIMS[name]
        run = run_instrumented(name, dims)
        profile = kernel_by_name(name).with_dims(**dims).profile()
        assert run.counter.mults == profile.mults, (
            f"{name}: instrumented {run.counter.mults} mults, "
            f"profile says {profile.mults}"
        )

    @pytest.mark.parametrize("name", sorted(INSTRUMENTED))
    def test_add_counts_match(self, name):
        dims = SMALL_DIMS[name]
        run = run_instrumented(name, dims)
        profile = kernel_by_name(name).with_dims(**dims).profile()
        assert run.counter.adds == profile.adds, (
            f"{name}: instrumented {run.counter.adds} adds, "
            f"profile says {profile.adds}"
        )


class TestFunctionalEquivalence:
    def test_gemm_matches_numpy_reference(self):
        dims = SMALL_DIMS["gemm"]
        run = run_instrumented("gemm", dims, seed=1)
        want = kernel_by_name("gemm").with_dims(**dims).reference(seed=1)
        assert np.allclose(run.result, want)

    def test_atax_matches_numpy_reference(self):
        dims = SMALL_DIMS["atax"]
        run = run_instrumented("atax", dims, seed=2)
        want = kernel_by_name("atax").with_dims(**dims).reference(seed=2)
        assert np.allclose(run.result, want)

    def test_mvt_matches_numpy_reference(self):
        dims = SMALL_DIMS["mvt"]
        run = run_instrumented("mvt", dims, seed=3)
        want = kernel_by_name("mvt").with_dims(**dims).reference(seed=3)
        assert np.allclose(run.result, want)


class TestLookup:
    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            run_instrumented("nope", {})


class TestExtendedKernels:
    """The 2mm and bicg nests also match their analytic profiles."""

    @pytest.mark.parametrize(
        "name,dims",
        [
            ("2mm", dict(ni=5, nj=6, nk=7, nl=8)),
            ("bicg", dict(m=9, n=11)),
        ],
    )
    def test_counts_match(self, name, dims):
        run = run_instrumented(name, dims)
        profile = kernel_by_name(name).with_dims(**dims).profile()
        assert run.counter.mults == profile.mults
        assert run.counter.adds == profile.adds

    def test_2mm_matches_numpy(self):
        dims = dict(ni=5, nj=6, nk=7, nl=8)
        run = run_instrumented("2mm", dims, seed=4)
        want = kernel_by_name("2mm").with_dims(**dims).reference(seed=4)
        assert np.allclose(run.result, want)
