"""Tests that the experiment regenerators reproduce the paper's shapes."""

import pytest

from repro.sim.experiments import (
    area_table,
    bitmap_experiment,
    cnn_experiment,
    cnn_nmr_experiment,
    operation_comparison,
    operation_speedups,
    polybench_experiment,
    polybench_summary,
    reliability_table,
)


class TestTable3:
    def test_coruscant_cycles_match_paper(self):
        rows = operation_comparison()
        assert rows["coruscant_add2_trd3"]["cycles"] == 19
        assert rows["coruscant_add5_trd7"]["cycles"] == 26
        assert rows["coruscant_mult_trd7"]["cycles"] == 64

    def test_headline_speedups(self):
        # Abstract: 6.9x / 2.3x speed and 5.5x / 3.4x energy vs SPIM.
        s = operation_speedups()
        assert s["add5_latency_vs_spim"] == pytest.approx(6.9, rel=0.05)
        assert s["mult_vs_spim"] == pytest.approx(2.3, rel=0.05)
        assert s["add5_energy_vs_spim"] == pytest.approx(5.5, rel=0.05)
        assert s["mult_energy_vs_spim"] == pytest.approx(3.4, rel=0.05)

    def test_area_opt_speedup(self):
        assert operation_speedups()["add5_area_vs_spim"] == pytest.approx(
            9.4, rel=0.05
        )


class TestFig10And11:
    def test_average_improvements(self):
        # Paper: 2.07x vs DWM-CPU, 2.20x vs DRAM-CPU, 25.2x energy.
        s = polybench_summary()
        assert s["avg_speedup_vs_dwm"] == pytest.approx(2.07, rel=0.1)
        assert s["avg_speedup_vs_dram"] == pytest.approx(2.20, rel=0.1)
        assert s["avg_energy_reduction"] == pytest.approx(25.2, rel=0.1)

    def test_every_kernel_improves(self):
        # Per-kernel variation mirrors the Fig. 10 bars: mult-heavy
        # kernels (gemm, syrk) gain least, add-heavy ones most.
        for r in polybench_experiment():
            assert r.speedup_vs_dwm > 1.25
            assert r.speedup_vs_dram > r.speedup_vs_dwm * 0.95
            assert r.energy_reduction > 10

    def test_dram_slower_than_dwm(self):
        for r in polybench_experiment():
            assert r.latency_dram_cpu > 1.0


class TestFig12:
    def test_paper_ratios(self):
        # CORUSCANT over ELP2IM: 1.6x / 2.2x / 3.4x for w = 2/3/4.
        results = bitmap_experiment(num_items=1_000_000)
        ratios = [r.coruscant_vs_elp2im for r in results]
        assert ratios[0] == pytest.approx(1.6, rel=0.1)
        assert ratios[1] == pytest.approx(2.2, rel=0.1)
        assert ratios[2] == pytest.approx(3.4, rel=0.1)

    def test_coruscant_latency_independent_of_operands(self):
        results = bitmap_experiment(num_items=1_000_000)
        # Speedup grows only because the CPU baseline scans more bitmaps.
        assert (
            results[0].speedup_coruscant
            < results[1].speedup_coruscant
            < results[2].speedup_coruscant
        )

    def test_ambit_below_elp2im(self):
        for r in bitmap_experiment(num_items=1_000_000):
            assert r.speedup_ambit < r.speedup_elp2im


class TestTables4And6:
    def test_structure(self):
        out = cnn_experiment()
        assert set(out) == {"alexnet", "lenet5"}
        assert "CORUSCANT-7 (full)" in out["alexnet"]

    def test_nmr_structure(self):
        out = cnn_nmr_experiment()
        rows = out["alexnet"]
        assert "full_N3_C7" in rows
        assert "ternary_N7_C7" in rows
        # N = 5 or 7 never run at TRD 3.
        assert "full_N5_C3" not in rows

    def test_nmr_always_slower(self):
        plain = cnn_experiment()["alexnet"]["CORUSCANT-7 (full)"]
        nmr = cnn_nmr_experiment()["alexnet"]
        assert nmr["full_N3_C7"] < plain
        assert nmr["full_N7_C7"] < nmr["full_N5_C7"] < nmr["full_N3_C7"]

    def test_table6_anchor(self):
        # Paper: AlexNet full precision with TMR at 29 FPS (C7).
        nmr = cnn_nmr_experiment()["alexnet"]
        assert nmr["full_N3_C7"] == pytest.approx(29, rel=0.1)


class TestTable5AndTable1:
    def test_reliability_rows_present(self):
        table = reliability_table()
        assert table["add_per_8bit"]["C7"] == pytest.approx(8e-6, rel=0.01)
        assert table["and_per_bit"]["C3"] == pytest.approx(3.3e-7, rel=0.05)
        assert "multiply_nmr5" in table

    def test_nmr_columns_respect_trd(self):
        table = reliability_table()
        assert "C3" not in table["add_nmr5"]
        assert set(table["add_nmr7"]) == {"C7"}

    def test_area_table(self):
        table = area_table()
        assert table == {
            "ADD2": 3.7,
            "ADD5": 9.2,
            "MUL+ADD5": 9.4,
            "MUL+ADD5+BBO": 10.0,
        }
