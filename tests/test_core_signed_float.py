"""Unit tests for signed arithmetic and the floating-point extension."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.dbc import DomainBlockCluster
from repro.core.floatpoint import FloatUnit, PimFloat
from repro.core.signed import SignedUnit
from repro.device.parameters import DeviceParameters


def make_dbc(tracks=64):
    return DomainBlockCluster(
        tracks=tracks, domains=32, params=DeviceParameters(trd=7)
    )


class TestSignedAdd:
    @pytest.mark.parametrize(
        "values",
        [[5, -3], [-100, -27], [127, -128], [0, 0], [-1, 1], [40, -3, -7]],
    )
    def test_signed_sum(self, values):
        unit = SignedUnit(make_dbc())
        assert unit.add(values, 9).value == sum(values)

    def test_single_value(self):
        unit = SignedUnit(make_dbc())
        assert unit.add([-42], 8).value == -42

    def test_out_of_range_rejected(self):
        unit = SignedUnit(make_dbc())
        with pytest.raises(ValueError):
            unit.add([128], 8)
        with pytest.raises(ValueError):
            unit.add([-129], 8)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SignedUnit(make_dbc()).add([], 8)


class TestSignedSubtract:
    @pytest.mark.parametrize(
        "a,b", [(5, 3), (3, 5), (-10, -20), (100, -27), (-50, 77), (0, 0)]
    )
    def test_difference(self, a, b):
        unit = SignedUnit(make_dbc())
        assert unit.subtract(a, b, 9).value == a - b

    @given(st.integers(-100, 100), st.integers(-100, 100))
    @settings(max_examples=30, deadline=None)
    def test_property(self, a, b):
        unit = SignedUnit(make_dbc())
        assert unit.subtract(a, b, 10).value == a - b


class TestSignedMultiply:
    @pytest.mark.parametrize(
        "a,b",
        [(5, 3), (-5, 3), (5, -3), (-5, -3), (0, -7), (-128, 1), (127, -127)],
    )
    def test_product(self, a, b):
        unit = SignedUnit(make_dbc())
        assert unit.multiply(a, b, 8).value == a * b

    @given(st.integers(-127, 127), st.integers(-127, 127))
    @settings(max_examples=30, deadline=None)
    def test_property(self, a, b):
        unit = SignedUnit(make_dbc())
        assert unit.multiply(a, b, 8).value == a * b


class TestPimFloatFormat:
    def test_roundtrip_exact_values(self):
        for value in (1.0, -2.5, 0.375, 1536.0, -0.0078125):
            f = PimFloat.from_float(value)
            assert f.to_float() == value

    def test_zero(self):
        f = PimFloat.from_float(0.0)
        assert f.is_zero and f.to_float() == 0.0

    def test_rounding_error_bounded(self):
        value = math.pi
        f = PimFloat.from_float(value)
        assert abs(f.to_float() - value) / value < 2 ** -10

    def test_overflow_detected(self):
        with pytest.raises(OverflowError):
            PimFloat.from_float(1e30)

    def test_validation(self):
        with pytest.raises(ValueError):
            PimFloat(2, 0, 0)
        with pytest.raises(ValueError):
            PimFloat(0, 64, 0)


class TestFloatAdd:
    @pytest.mark.parametrize(
        "a,b",
        [
            (1.5, 2.25),
            (100.0, 0.125),
            (3.0, -1.5),
            (-4.0, -8.0),
            (2.0, -2.0),
            (0.0, 5.5),
        ],
    )
    def test_add_exact_cases(self, a, b):
        unit = FloatUnit(make_dbc())
        fa, fb = PimFloat.from_float(a), PimFloat.from_float(b)
        got = unit.add(fa, fb).to_float()
        assert got == a + b

    def test_tiny_operand_vanishes(self):
        unit = FloatUnit(make_dbc())
        big = PimFloat.from_float(1024.0)
        tiny = PimFloat.from_float(2 ** -20)
        assert unit.add(big, tiny).to_float() == 1024.0

    @given(
        st.floats(min_value=-1000, max_value=1000).filter(
            lambda x: x == 0 or abs(x) > 1e-3
        ),
        st.floats(min_value=-1000, max_value=1000).filter(
            lambda x: x == 0 or abs(x) > 1e-3
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_add_relative_error(self, a, b):
        unit = FloatUnit(make_dbc())
        fa, fb = PimFloat.from_float(a), PimFloat.from_float(b)
        got = unit.add(fa, fb).to_float()
        want = fa.to_float() + fb.to_float()
        # The achievable error of a fixed-precision add is bounded by
        # the ulp of the *larger operand*, not of the result: opposite
        # signs with near-equal magnitudes cancel, and the result can
        # be arbitrarily smaller than the rounding error it inherits.
        scale = max(abs(fa.to_float()), abs(fb.to_float()))
        if want == 0:
            assert abs(got) < 1e-3 + scale * 2 ** -8
        else:
            assert abs(got - want) <= max(abs(want), scale) * 2 ** -8


class TestFloatMultiply:
    @pytest.mark.parametrize(
        "a,b",
        [(1.5, 2.0), (0.5, -0.25), (-3.0, -4.0), (7.0, 0.0), (1.0, 1.0)],
    )
    def test_multiply_exact_cases(self, a, b):
        unit = FloatUnit(make_dbc())
        fa, fb = PimFloat.from_float(a), PimFloat.from_float(b)
        assert unit.multiply(fa, fb).to_float() == a * b

    @given(
        st.floats(min_value=0.01, max_value=100),
        st.floats(min_value=0.01, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_multiply_relative_error(self, a, b):
        unit = FloatUnit(make_dbc())
        fa, fb = PimFloat.from_float(a), PimFloat.from_float(b)
        got = unit.multiply(fa, fb).to_float()
        want = fa.to_float() * fb.to_float()
        assert abs(got - want) / want < 2 ** -9

    def test_format_mismatch_rejected(self):
        unit = FloatUnit(make_dbc())
        a = PimFloat.from_float(1.0, exp_bits=6, man_bits=10)
        b = PimFloat.from_float(1.0, exp_bits=8, man_bits=10)
        with pytest.raises(ValueError):
            unit.multiply(a, b)
