"""Tests for the shared breaker core (resilience.window).

Both circuit breakers — the device ladder and the service's request
breaker — are built on this one implementation, so its trip and probe
semantics are load-bearing twice over.
"""

import pytest

from repro.resilience.window import (
    ErrorWindow,
    ProbeGate,
    ProbeVerdict,
    WindowPolicy,
)


class TestWindowPolicy:
    def test_defaults_valid(self):
        WindowPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"min_samples": 0},
            {"min_samples": 33},  # > window
            {"trip_threshold": 0.0},
            {"trip_threshold": 1.5},
            {"probe_ops": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WindowPolicy(**kwargs)


class TestErrorWindow:
    def policy(self, **kwargs):
        base = dict(
            window=4, min_samples=2, trip_threshold=0.5, probe_ops=1
        )
        base.update(kwargs)
        return WindowPolicy(**base)

    def test_empty_window_never_trips(self):
        window = ErrorWindow(self.policy())
        assert window.rate == 0.0
        assert not window.tripped()

    def test_min_samples_gate(self):
        window = ErrorWindow(self.policy())
        window.record(True)
        # 100% faulty but only one sample: not enough evidence.
        assert window.rate == 1.0
        assert not window.tripped()
        window.record(True)
        assert window.tripped()

    def test_old_outcomes_age_out(self):
        window = ErrorWindow(self.policy())
        for _ in range(4):
            window.record(True)
        assert window.tripped()
        for _ in range(4):
            window.record(False)
        assert window.rate == 0.0
        assert not window.tripped()

    def test_initial_outcomes_bounded_by_window(self):
        window = ErrorWindow(self.policy(), outcomes=[1] * 10)
        assert window.samples == 4

    def test_clear(self):
        window = ErrorWindow(self.policy())
        window.record(True)
        window.record(True)
        window.clear()
        assert window.samples == 0
        assert not window.tripped()


class TestProbeGate:
    def test_inert_until_started(self):
        gate = ProbeGate()
        assert not gate.active
        with pytest.raises(RuntimeError):
            gate.record(False)

    def test_commit_after_clean_probes(self):
        gate = ProbeGate()
        gate.start(3)
        assert gate.record(False) is ProbeVerdict.CONTINUE
        assert gate.record(False) is ProbeVerdict.CONTINUE
        assert gate.record(False) is ProbeVerdict.COMMIT
        assert not gate.active

    def test_one_failure_snaps_back(self):
        gate = ProbeGate()
        gate.start(3)
        gate.record(False)
        assert gate.record(True) is ProbeVerdict.SNAP_BACK
        assert not gate.active
        assert gate.failures == 1

    def test_double_start_rejected(self):
        gate = ProbeGate()
        gate.start(2)
        with pytest.raises(RuntimeError):
            gate.start(2)

    def test_cancel_disarms(self):
        gate = ProbeGate()
        gate.start(2)
        gate.cancel()
        assert not gate.active
        gate.start(2)  # re-armable after cancel

    def test_trials_counted(self):
        gate = ProbeGate()
        gate.start(1)
        gate.record(True)
        gate.start(1)
        gate.record(False)
        assert gate.probes == 2
        assert gate.failures == 1

    def test_bad_probe_ops_rejected(self):
        with pytest.raises(ValueError):
            ProbeGate().start(0)
