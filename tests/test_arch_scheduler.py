"""Unit tests for the bank-state command scheduler."""

import pytest

from repro.arch.scheduler import (
    CommandScheduler,
    Request,
    stream_from_counts,
)
from repro.arch.timing import DRAM_DDR3_1600, DWM_DDR3_1600


class TestBankStateMachine:
    def test_row_hit_cheaper(self):
        sched = CommandScheduler(DRAM_DDR3_1600, banks=1)
        stats = sched.run(
            [Request(bank=0, row=5), Request(bank=0, row=5)]
        )
        assert stats.row_hits == 1
        # The hit costs only t_CAS.
        first = DRAM_DDR3_1600.t_rcd + DRAM_DDR3_1600.t_cas + DRAM_DDR3_1600.t_rp
        assert stats.service_cycles == first + DRAM_DDR3_1600.t_cas

    def test_dwm_pays_shift_distance(self):
        sched = CommandScheduler(DWM_DDR3_1600, banks=1)
        stats = sched.run(
            [Request(bank=0, row=0), Request(bank=0, row=10)]
        )
        # The second access shifts |10 - 0| positions.
        assert stats.service_cycles >= 10

    def test_bank_parallelism_reduces_makespan(self):
        requests = [Request(bank=i % 8, row=i % 4, arrival=0) for i in range(64)]
        wide = CommandScheduler(DRAM_DDR3_1600, banks=8).run(requests)
        narrow_requests = [
            Request(bank=0, row=r.row, arrival=0) for r in requests
        ]
        narrow = CommandScheduler(DRAM_DDR3_1600, banks=8).run(
            narrow_requests
        )
        assert wide.total_cycles < narrow.total_cycles

    def test_queue_fraction_grows_with_load(self):
        light = stream_from_counts(500, arrival_rate=0.05, seed=3)
        heavy = stream_from_counts(500, arrival_rate=5.0, seed=3)
        sched_l = CommandScheduler(DWM_DDR3_1600).run(light)
        sched_h = CommandScheduler(DWM_DDR3_1600).run(heavy)
        assert sched_h.queue_fraction > sched_l.queue_fraction

    def test_saturated_memory_is_queue_dominated(self):
        """Reproduces the paper's ~80%-queueing Fig. 10 breakdown."""
        stream = stream_from_counts(2000, arrival_rate=8.0, seed=1)
        stats = CommandScheduler(DWM_DDR3_1600).run(stream)
        assert stats.queue_fraction > 0.6

    def test_row_hit_writes_counted(self):
        sched = CommandScheduler(DRAM_DDR3_1600, banks=1)
        stats = sched.run(
            [
                Request(bank=0, row=5, is_write=True),
                Request(bank=0, row=5, is_write=True),  # write hit
                Request(bank=0, row=5),  # read hit
            ]
        )
        assert stats.row_hits == 2
        assert sched.banks[0].row_hits == 2

    def test_write_hit_pays_write_recovery_only(self):
        sched = CommandScheduler(DRAM_DDR3_1600, banks=1)
        opener = sched.run([Request(bank=0, row=5, is_write=True)])
        hit = sched.run(
            [Request(bank=0, row=5, is_write=True)]
        )
        assert hit.service_cycles == DRAM_DDR3_1600.t_wr
        assert hit.service_cycles < opener.service_cycles

    def test_aggregate_hits_match_bank_tallies(self):
        stream = stream_from_counts(2000, banks=8, seed=4)
        sched = CommandScheduler(DWM_DDR3_1600, banks=8)
        stats = sched.run(stream)
        assert stats.row_hits == sum(b.row_hits for b in sched.banks)
        assert stats.row_hits > 0

    def test_bad_bank_rejected(self):
        sched = CommandScheduler(DRAM_DDR3_1600, banks=2)
        with pytest.raises(ValueError):
            sched.run([Request(bank=5, row=0)])

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(bank=-1, row=0)


class TestStreamSynthesis:
    def test_locality_controls_hit_rate(self):
        high = stream_from_counts(2000, locality=0.9, seed=2)
        low = stream_from_counts(2000, locality=0.1, seed=2)
        hit_high = CommandScheduler(DWM_DDR3_1600).run(high).hit_rate
        hit_low = CommandScheduler(DWM_DDR3_1600).run(low).hit_rate
        assert hit_high > hit_low

    def test_stream_length(self):
        assert len(stream_from_counts(123)) == 123

    def test_validation(self):
        with pytest.raises(ValueError):
            stream_from_counts(10, locality=2.0)
        with pytest.raises(ValueError):
            stream_from_counts(10, arrival_rate=0)
