"""SLO definitions, burn-rate engine, history replay, renderers."""

import pytest

from repro.exitcodes import EXIT_DEGRADED, EXIT_OK
from repro.obs.slo import (
    BURN_ALERT_THRESHOLD,
    DEFAULT_SLOS,
    FAST_WINDOW_S,
    SLOW_WINDOW_S,
    SLO_SCHEMA,
    STATUS_BURNING,
    STATUS_NO_DATA,
    STATUS_OK,
    SloDefinition,
    SloEngine,
    counts_from_loadbench,
    counts_from_registry,
    evaluate_history,
    fraction_below,
    good_below,
    publish_gauges,
    render_slo_markdown,
    slo_exit_code,
)
from repro.telemetry.metrics import MetricsRegistry


AVAILABILITY = SloDefinition(
    name="availability", kind="availability", objective=0.99
)
LATENCY = SloDefinition(
    name="latency", kind="latency", objective=0.99, threshold_s=0.5
)


class TestDefinition:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SloDefinition(name="x", kind="throughput", objective=0.9)

    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 2.0])
    def test_objective_must_be_open_interval(self, objective):
        with pytest.raises(ValueError, match="objective"):
            SloDefinition(
                name="x", kind="availability", objective=objective
            )

    @pytest.mark.parametrize("threshold", [None, 0.0, -1.0])
    def test_latency_needs_positive_threshold(self, threshold):
        with pytest.raises(ValueError, match="threshold_s"):
            SloDefinition(
                name="x",
                kind="latency",
                objective=0.99,
                threshold_s=threshold,
            )

    def test_budget_and_dict(self):
        assert LATENCY.budget == pytest.approx(0.01)
        record = LATENCY.as_dict()
        assert record["threshold_s"] == 0.5
        assert "description" not in record  # empty fields are elided

    def test_default_slos_cover_both_kinds(self):
        kinds = {slo.kind for slo in DEFAULT_SLOS}
        assert kinds == {"availability", "latency"}


class TestGoodBelow:
    HIST = {
        "edges": [0.1, 0.5, 1.0],
        "cumulative": [2, 6, 9, 10],
        "count": 10,
    }

    def test_exact_edge_uses_cumulative(self):
        assert good_below(self.HIST, 0.5) == 6.0

    def test_interpolates_inside_bucket(self):
        # (0.1, 0.5] holds 4 observations; 0.3 is halfway through.
        assert good_below(self.HIST, 0.3) == pytest.approx(4.0)

    def test_above_last_edge_is_everything(self):
        assert good_below(self.HIST, 2.0) == 10.0

    def test_below_first_edge_interpolates_from_zero(self):
        assert good_below(self.HIST, 0.05) == pytest.approx(1.0)

    def test_empty_histogram_is_zero(self):
        assert good_below({"edges": [1], "cumulative": [0, 0], "count": 0},
                          0.5) == 0.0


class TestCountsFromRegistry:
    def test_reads_service_instruments(self):
        metrics = MetricsRegistry()
        metrics.counter("service.requests").inc(10)
        metrics.counter("service.status.ok").inc(7)
        metrics.counter("service.status.degraded").inc(1)
        metrics.counter("service.status.error").inc(2)
        hist = metrics.histogram("service.request_seconds", (0.5, 1.0))
        for value in (0.1, 0.2, 0.3, 0.9):
            hist.observe(value)
        counts = counts_from_registry(metrics, (AVAILABILITY, LATENCY))
        assert counts["availability"] == (8.0, 10.0)
        assert counts["latency"] == (3.0, 4.0)

    def test_missing_histogram_yields_no_data(self):
        counts = counts_from_registry(MetricsRegistry(), (LATENCY,))
        assert counts["latency"] == (0.0, 0.0)


class TestEngine:
    def test_time_must_be_monotone(self):
        engine = SloEngine(slos=(AVAILABILITY,))
        engine.observe(10.0, {"availability": (5, 5)})
        with pytest.raises(ValueError, match="time went backwards"):
            engine.observe(5.0, {"availability": (6, 6)})

    def test_fast_window_must_not_outlast_slow(self):
        with pytest.raises(ValueError):
            SloEngine(fast_window_s=600.0, slow_window_s=300.0)

    def test_no_data_status(self):
        report = SloEngine(slos=(AVAILABILITY,)).evaluate()
        (entry,) = report["slos"]
        assert entry["status"] == STATUS_NO_DATA
        assert entry["compliance"] is None
        assert report["burning"] is False

    def test_healthy_traffic_is_ok(self):
        engine = SloEngine(slos=(AVAILABILITY,))
        for step in range(1, 11):
            engine.observe(step * 30.0, {"availability": (step * 5, step * 5)})
        report = engine.evaluate()
        (entry,) = report["slos"]
        assert entry["status"] == STATUS_OK
        assert entry["burn_rate_fast"] == 0.0
        assert entry["compliance"] == 1.0

    def test_total_failure_burns_both_windows(self):
        engine = SloEngine(slos=(AVAILABILITY,))
        for step in range(1, 11):
            engine.observe(step * 30.0, {"availability": (0, step * 5)})
        report = engine.evaluate()
        (entry,) = report["slos"]
        # bad fraction 1.0 over a 0.01 budget = burn rate 100.
        assert entry["burn_rate_fast"] == pytest.approx(100.0)
        assert entry["burn_rate_slow"] == pytest.approx(100.0)
        assert entry["status"] == STATUS_BURNING
        assert report["burning"] is True

    def test_fast_window_uses_window_baseline(self):
        engine = SloEngine(slos=(AVAILABILITY,))
        # 1000 good requests long ago, then 100 pure failures recently.
        engine.observe(0.0, {"availability": (1000, 1000)})
        engine.observe(4000.0, {"availability": (1000, 1100)})
        fast = engine.burn_rate(AVAILABILITY, FAST_WINDOW_S)
        slow = engine.burn_rate(AVAILABILITY, SLOW_WINDOW_S)
        # Both window baselines resolve to the t=0 point (nothing newer
        # is old enough), so both see the 100-bad / 100-new burst.
        assert fast == pytest.approx(100.0)
        assert slow == pytest.approx(100.0)

    def test_old_failures_age_out_of_the_fast_window(self):
        engine = SloEngine(slos=(AVAILABILITY,))
        engine.observe(0.0, {"availability": (0, 100)})  # bad burst
        engine.observe(500.0, {"availability": (100, 200)})
        engine.observe(700.0, {"availability": (200, 300)})
        # Fast window baseline already contains the burst's bad count,
        # so the trailing delta is all good.
        assert engine.burn_rate(AVAILABILITY, FAST_WINDOW_S) == 0.0
        # Slow window still sees the burst via the zero origin.
        assert engine.burn_rate(
            AVAILABILITY, SLOW_WINDOW_S
        ) == pytest.approx(100.0 / 300.0 / AVAILABILITY.budget)

    def test_report_shape(self):
        engine = SloEngine()
        report = engine.evaluate()
        assert report["schema"] == SLO_SCHEMA
        assert report["burn_threshold"] == BURN_ALERT_THRESHOLD
        assert {e["name"] for e in report["slos"]} == {
            "availability",
            "latency",
        }


class TestPublishGauges:
    def test_gauge_names_and_values(self):
        engine = SloEngine(slos=(AVAILABILITY,))
        engine.observe(6.0, {"availability": (49, 50)})
        metrics = MetricsRegistry()
        publish_gauges(metrics, engine.evaluate())
        gauges = metrics.as_dict()["gauges"]
        assert gauges["slo.availability.objective"] == 0.99
        assert gauges["slo.availability.compliance"] == 0.98
        assert "slo.availability.burn_rate.fast" in gauges
        assert "slo.availability.burn_rate.slow" in gauges

    def test_no_data_compliance_renders_as_one(self):
        metrics = MetricsRegistry()
        publish_gauges(metrics, SloEngine(slos=(AVAILABILITY,)).evaluate())
        gauges = metrics.as_dict()["gauges"]
        assert gauges["slo.availability.compliance"] == 1.0


def loadbench_doc(completed, ok, p99=0.01, embedded=None):
    doc = {
        "schema": "coruscant-loadbench/1",
        "requests_completed": completed,
        "statuses": {"ok": ok, "error": completed - ok},
        "kernels": [
            {
                "name": "loadbench.overall",
                "requests": completed,
                "wall_seconds_min": p99 / 10,
                "wall_seconds_median": p99 / 2,
                "wall_seconds_p90": p99 * 0.9,
                "wall_seconds_p99": p99,
            }
        ],
    }
    if embedded is not None:
        doc["slo"] = {"counts": embedded}
    return doc


class TestLoadbenchCounts:
    def test_embedded_counts_win(self):
        doc = loadbench_doc(
            50, 50, embedded={"availability": [40, 50], "latency": [45, 50]}
        )
        counts = counts_from_loadbench(doc, (AVAILABILITY, LATENCY))
        assert counts["availability"] == (40.0, 50.0)
        assert counts["latency"] == (45.0, 50.0)

    def test_legacy_doc_reconstructs_from_statuses(self):
        counts = counts_from_loadbench(
            loadbench_doc(50, 48), (AVAILABILITY, LATENCY)
        )
        assert counts["availability"] == (48.0, 50.0)
        # p99 of 10 ms is far below the 500 ms threshold: all good.
        assert counts["latency"] == (50.0, 50.0)

    def test_fraction_below_extremes(self):
        entry = {
            "wall_seconds_min": 0.1,
            "wall_seconds_median": 0.2,
            "wall_seconds_p90": 0.4,
            "wall_seconds_p99": 0.8,
        }
        assert fraction_below(0.05, entry) == 0.0
        assert fraction_below(0.9, entry) == 1.0
        assert fraction_below(0.3, entry) == pytest.approx(0.7)


class TestEvaluateHistory:
    def test_healthy_history_exits_zero(self):
        documents = [loadbench_doc(50, 50) for _ in range(3)]
        report = evaluate_history(documents)
        assert report["burning"] is False
        assert report["entries"] == 3
        assert report["virtual_seconds"] == pytest.approx(900.0)
        assert slo_exit_code(report) == EXIT_OK

    def test_recent_failures_burn_and_exit_three(self):
        documents = [loadbench_doc(50, 50), loadbench_doc(50, 0)]
        report = evaluate_history(documents)
        assert report["burning"] is True
        statuses = {e["name"]: e["status"] for e in report["slos"]}
        assert statuses["availability"] == STATUS_BURNING
        assert slo_exit_code(report) == EXIT_DEGRADED

    def test_empty_history_is_no_data(self):
        report = evaluate_history([])
        assert report["burning"] is False
        assert all(
            e["status"] == STATUS_NO_DATA for e in report["slos"]
        )


class TestRenderer:
    def test_markdown_report(self):
        report = evaluate_history([loadbench_doc(50, 50)])
        text = render_slo_markdown(report)
        assert text.startswith("# SLO report")
        assert "| availability |" in text
        assert "All objectives healthy." in text

    def test_markdown_burning_verdict(self):
        report = evaluate_history([loadbench_doc(50, 0)])
        assert "**BURNING**" in render_slo_markdown(report)
