"""Tests for the derived RNG substreams (utils.streams).

Every shard/replica/purpose in the stack draws its seed through
``derive_seed`` — never ``seed + k`` arithmetic — so these values are
load-bearing: changing the derivation changes every campaign's
bit-identical reports.
"""

import pytest
from hypothesis import given, strategies as st

from repro.utils.streams import (
    backoff_delay,
    backoff_schedule,
    derive_seed,
    derive_stream,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "campaign.operands", 0) == derive_seed(
            0, "campaign.operands", 0
        )

    def test_known_values_pinned(self):
        # Regression pins: the derivation is part of the report format.
        assert derive_seed(0, "campaign.operands", 0) == 1002983458821641851
        assert derive_seed(0, "campaign.operands", 1) == 1701505596925951838
        assert derive_seed(7, "mc.faults", 3) == 15938703821309523139

    def test_distinct_across_shards(self):
        seeds = {derive_seed(0, "campaign.faults", k) for k in range(64)}
        assert len(seeds) == 64

    def test_distinct_across_purposes(self):
        purposes = (
            "campaign.operands",
            "campaign.faults",
            "cnn.faults",
            "mc.faults",
            "nmr.replica",
        )
        seeds = {derive_seed(0, p, 0) for p in purposes}
        assert len(seeds) == len(purposes)

    def test_distinct_across_base_seeds(self):
        assert derive_seed(0, "mc.faults", 0) != derive_seed(
            1, "mc.faults", 0
        )

    def test_not_seed_plus_k(self):
        # The whole point: adjacent shards must not be adjacent seeds.
        a = derive_seed(0, "campaign.faults", 0)
        b = derive_seed(0, "campaign.faults", 1)
        assert abs(a - b) > 1

    def test_empty_purpose_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(0, "", 0)

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(0, "campaign.faults", -1)


class TestDeriveStream:
    def test_stream_reproducible(self):
        a = derive_stream(3, "campaign.operands", 2)
        b = derive_stream(3, "campaign.operands", 2)
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_streams_diverge(self):
        a = derive_stream(3, "campaign.operands", 0)
        b = derive_stream(3, "campaign.operands", 1)
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)
        ]


class TestBackoffDelay:
    """Deterministic-jitter backoff (the service retry timeline)."""

    def test_attempt_zero_is_free(self):
        assert backoff_delay(0, "service|add", 0) == 0.0

    def test_deterministic(self):
        a = backoff_delay(7, "service|add|42", 3)
        b = backoff_delay(7, "service|add|42", 3)
        assert a == b

    def test_distinct_across_attempts_and_keys(self):
        delays = {
            backoff_delay(0, "service|add|1", k) for k in range(1, 6)
        }
        assert len(delays) == 5
        assert backoff_delay(0, "service|add|1", 2) != backoff_delay(
            0, "service|add|2", 2
        )

    @given(
        attempt=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=2**32),
        jitter=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_cap_is_monotone_upper_bound(self, attempt, seed, jitter):
        delay = backoff_delay(
            seed, "p", attempt, base=0.05, cap=2.0, jitter=jitter
        )
        assert 0.0 <= delay <= 2.0

    @given(attempts=st.integers(min_value=0, max_value=12))
    def test_jitter_free_schedule_monotone_nondecreasing(self, attempts):
        schedule = backoff_schedule(0, "p", attempts, jitter=0.0)
        assert len(schedule) == attempts
        assert schedule == sorted(schedule)

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        attempt=st.integers(min_value=1, max_value=12),
    )
    def test_jitter_never_exceeds_nominal(self, seed, attempt):
        full = backoff_delay(seed, "p", attempt, jitter=0.0)
        jittered = backoff_delay(seed, "p", attempt, jitter=0.5)
        assert jittered <= full
        assert jittered >= full * 0.5

    def test_zero_attempts_schedule_empty(self):
        assert backoff_schedule(0, "p", 0) == []

    def test_schedule_matches_delays(self):
        schedule = backoff_schedule(5, "q", 4)
        assert schedule == [
            backoff_delay(5, "q", attempt) for attempt in (1, 2, 3, 4)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            backoff_delay(0, "p", -1)
        with pytest.raises(ValueError):
            backoff_delay(0, "p", 1, jitter=1.5)
        with pytest.raises(ValueError):
            backoff_delay(0, "p", 1, factor=0.5)
        with pytest.raises(ValueError):
            backoff_schedule(0, "p", -1)
