"""Tests for the derived RNG substreams (utils.streams).

Every shard/replica/purpose in the stack draws its seed through
``derive_seed`` — never ``seed + k`` arithmetic — so these values are
load-bearing: changing the derivation changes every campaign's
bit-identical reports.
"""

import pytest

from repro.utils.streams import derive_seed, derive_stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "campaign.operands", 0) == derive_seed(
            0, "campaign.operands", 0
        )

    def test_known_values_pinned(self):
        # Regression pins: the derivation is part of the report format.
        assert derive_seed(0, "campaign.operands", 0) == 1002983458821641851
        assert derive_seed(0, "campaign.operands", 1) == 1701505596925951838
        assert derive_seed(7, "mc.faults", 3) == 15938703821309523139

    def test_distinct_across_shards(self):
        seeds = {derive_seed(0, "campaign.faults", k) for k in range(64)}
        assert len(seeds) == 64

    def test_distinct_across_purposes(self):
        purposes = (
            "campaign.operands",
            "campaign.faults",
            "cnn.faults",
            "mc.faults",
            "nmr.replica",
        )
        seeds = {derive_seed(0, p, 0) for p in purposes}
        assert len(seeds) == len(purposes)

    def test_distinct_across_base_seeds(self):
        assert derive_seed(0, "mc.faults", 0) != derive_seed(
            1, "mc.faults", 0
        )

    def test_not_seed_plus_k(self):
        # The whole point: adjacent shards must not be adjacent seeds.
        a = derive_seed(0, "campaign.faults", 0)
        b = derive_seed(0, "campaign.faults", 1)
        assert abs(a - b) > 1

    def test_empty_purpose_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(0, "", 0)

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(0, "campaign.faults", -1)


class TestDeriveStream:
    def test_stream_reproducible(self):
        a = derive_stream(3, "campaign.operands", 2)
        b = derive_stream(3, "campaign.operands", 2)
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_streams_diverge(self):
        a = derive_stream(3, "campaign.operands", 0)
        b = derive_stream(3, "campaign.operands", 1)
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)
        ]
