"""Unit tests for the telemetry subsystem (spans, metrics, Chrome export)."""

import json

import pytest

from repro.telemetry import (
    NULL_SPAN,
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    TelemetryHub,
    Tracer,
    activated,
    active_hub,
    chrome_trace,
    write_chrome_trace,
)


class FakeClock:
    """Deterministic injectable clock, advanced manually in seconds."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


# ----------------------------------------------------------------------
# tracer nesting


class TestTracerNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("pim.mult") as outer:
            with tracer.span("mult.reduction") as inner:
                assert tracer.active is inner
                assert tracer.depth == 2
            assert tracer.active is outer
        assert tracer.active is None
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.children == []

    def test_iter_spans_depth_first_start_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                with tracer.span("d"):
                    pass
        with tracer.span("e"):
            pass
        assert [s.name for s in tracer.iter_spans()] == list("abcde")
        assert tracer.span_count() == 5

    def test_find_returns_all_matches_in_order(self):
        tracer = Tracer()
        with tracer.span("x", category="core", step=1):
            with tracer.span("x", step=2):
                pass
        found = tracer.find("x")
        assert [s.attrs["step"] for s in found] == [1, 2]
        assert tracer.find("missing") == []

    def test_wall_times_from_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.advance(1e-6)  # 1 us after the epoch
        with tracer.span("outer") as outer:
            clock.advance(3e-6)
            with tracer.span("inner") as inner:
                clock.advance(2e-6)
        assert outer.start_us == pytest.approx(1.0)
        assert inner.start_us == pytest.approx(4.0)
        assert inner.duration_us == pytest.approx(2.0)
        assert outer.duration_us == pytest.approx(5.0)

    def test_annotate_merges_and_overwrites(self):
        tracer = Tracer()
        with tracer.span("op", cycles=1) as span:
            span.annotate(cycles=64, energy_pj=2.5)
        assert span.attrs == {"cycles": 64, "energy_pj": 2.5}

    def test_exception_marks_error_and_unwinds(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.depth == 0
        inner = tracer.find("inner")[0]
        assert inner.attrs["error"] == "ValueError"

    def test_leaked_inner_span_is_unwound_by_outer_exit(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        outer.__enter__()
        inner = tracer.span("inner")
        inner.__enter__()
        # The outer exit unwinds past the leaked inner span.
        outer.__exit__(None, None, None)
        assert tracer.depth == 0
        assert outer.children == [inner]

    def test_instants_recorded_with_timestamps(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.advance(5e-6)
        tracer.instant("resilience.retry", attempt=2)
        (instant,) = tracer.instants
        assert instant["name"] == "resilience.retry"
        assert instant["ts_us"] == pytest.approx(5.0)
        assert instant["attrs"] == {"attempt": 2}

    def test_clear_refuses_with_open_spans(self):
        tracer = Tracer()
        span = tracer.span("open")
        span.__enter__()
        with pytest.raises(RuntimeError):
            tracer.clear()
        span.__exit__(None, None, None)
        tracer.clear()
        assert tracer.roots == [] and tracer.instants == []


# ----------------------------------------------------------------------
# null tracer: zero overhead


class TestNullTracer:
    def test_span_returns_shared_singleton(self):
        tracer = NullTracer()
        a = tracer.span("pim.mult", cycles=64)
        b = tracer.span("anything.else")
        assert a is b is NULL_SPAN
        assert NULL_TRACER.span("x") is NULL_SPAN

    def test_no_span_objects_allocated(self):
        # The singleton has no per-instance storage at all: entering,
        # annotating and exiting allocate nothing and record nothing.
        assert NULL_SPAN.__slots__ == ()
        with NULL_TRACER.span("op") as span:
            assert span.annotate(cycles=1) is span
        assert NULL_SPAN.attrs == {}
        assert NULL_TRACER.span_count() == 0
        assert list(NULL_TRACER.iter_spans()) == []

    def test_instant_and_clear_are_noops(self):
        NULL_TRACER.instant("event", x=1)
        assert NULL_TRACER.instants == ()
        NULL_TRACER.clear()
        assert NULL_TRACER.find("event") == []
        assert NULL_TRACER.active is None
        assert NULL_TRACER.depth == 0

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NULL_TRACER.enabled is False


# ----------------------------------------------------------------------
# metrics


class TestCounterGauge:
    def test_counter_monotonic(self):
        c = Counter("ops")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_add(self):
        g = Gauge("depth")
        g.set(3)
        g.add(-1)
        assert g.value == 2


class TestHistogramBuckets:
    def test_exact_edge_lands_in_its_bucket(self):
        h = Histogram("h", edges=(1, 2, 4, 8))
        # bucket i counts edges[i-1] < v <= edges[i]
        for value in (1, 2, 4, 8):
            h.observe(value)
        assert h.counts == [1, 1, 1, 1, 0]

    def test_between_edges_rounds_up(self):
        h = Histogram("h", edges=(1, 2, 4, 8))
        h.observe(3)  # 2 < 3 <= 4
        assert h.counts == [0, 0, 1, 0, 0]

    def test_overflow_bucket_catches_everything_above(self):
        h = Histogram("h", edges=(1, 2, 4, 8))
        h.observe(9)
        h.observe(10_000)
        assert h.counts == [0, 0, 0, 0, 2]
        assert h.count == 2

    def test_below_first_edge_lands_in_first_bucket(self):
        h = Histogram("h", edges=(1, 2))
        h.observe(0)
        h.observe(-5)
        assert h.counts == [2, 0, 0]

    def test_summary_stats(self):
        h = Histogram("h", edges=(10,))
        for v in (2, 4, 6):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 12
        assert h.mean == pytest.approx(4.0)
        assert h.min == 2 and h.max == 6
        d = h.as_dict()
        assert d["edges"] == [10]
        assert d["counts"] == [3, 0]

    def test_counts_length_is_edges_plus_one(self):
        h = Histogram("h", edges=(1, 2, 3))
        assert len(h.counts) == 4

    def test_edges_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(1, 1, 2))
        with pytest.raises(ValueError):
            Histogram("h", edges=(3, 2))
        with pytest.raises(ValueError):
            Histogram("h", edges=())


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        h = reg.histogram("h", edges=(1, 2))
        assert reg.histogram("h") is h
        assert len(reg) == 3

    def test_histogram_first_use_requires_edges(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            reg.histogram("unseen")

    def test_histogram_edge_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1, 2))
        with pytest.raises(ValueError):
            reg.histogram("h", edges=(1, 2, 3))

    def test_cross_kind_name_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x", edges=(1,))

    def test_as_dict_snapshot_is_non_destructive(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.histogram("h", edges=(1,)).observe(5)
        first = reg.as_dict()
        second = reg.as_dict()
        assert first == second
        # Mutating the snapshot must not touch the registry.
        first["counters"]["c"] = 999
        first["histograms"]["h"]["counts"][0] = 999
        assert reg.counter("c").value == 3
        assert reg.histogram("h").counts == [0, 1]


# ----------------------------------------------------------------------
# chrome export


class TestChromeTrace:
    def _traced(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("pim.mult", category="pim") as outer:
            clock.advance(2e-6)
            with tracer.span("mult.reduction", category="core") as inner:
                clock.advance(1e-6)
                inner.annotate(cycles=8)
            outer.annotate(cycles=64, energy_pj=680.6)
        tracer.instant("resilience.retry", category="resilience", attempt=2)
        return tracer

    def test_document_schema(self):
        doc = chrome_trace(self._traced())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "coruscant-pim"
        phases = [e["ph"] for e in events]
        assert phases == ["M", "X", "X", "i"]

    def test_complete_events_carry_ts_dur_args(self):
        doc = chrome_trace(self._traced())
        outer = next(
            e for e in doc["traceEvents"] if e.get("name") == "pim.mult"
        )
        assert outer["cat"] == "pim"
        assert outer["ts"] == pytest.approx(0.0)
        assert outer["dur"] == pytest.approx(3.0)
        assert outer["args"] == {"cycles": 64, "energy_pj": 680.6}
        inner = next(
            e
            for e in doc["traceEvents"]
            if e.get("name") == "mult.reduction"
        )
        # Nested by timestamp containment on the same pid/tid.
        assert inner["pid"] == outer["pid"]
        assert inner["tid"] == outer["tid"]
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_instant_events_are_thread_scoped(self):
        doc = chrome_trace(self._traced())
        instant = next(e for e in doc["traceEvents"] if e["ph"] == "i")
        assert instant["s"] == "t"
        assert instant["name"] == "resilience.retry"
        assert instant["args"] == {"attempt": 2}

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        document = write_chrome_trace(self._traced(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded == document
        assert loaded["traceEvents"]

    def test_custom_process_name(self):
        doc = chrome_trace(self._traced(), process_name="my-sim")
        assert doc["traceEvents"][0]["args"]["name"] == "my-sim"


# ----------------------------------------------------------------------
# hub helpers + runtime activation


class TestTelemetryHub:
    def test_device_op_counters(self):
        hub = TelemetryHub()
        hub.device_op("shift", cycles=3, energy_pj=0.6, count=3)
        counters = hub.metrics_dict()["counters"]
        assert counters["device.ops"] == 3
        assert counters["device.shift.count"] == 3
        assert counters["device.cycles"] == 3
        assert counters["device.energy_pj"] == pytest.approx(0.6)

    def test_memory_access_hit_rate_gauge(self):
        hub = TelemetryHub()
        hub.memory_access(is_write=False, row_hit=True)
        hub.memory_access(is_write=True, row_hit=False)
        snapshot = hub.metrics_dict()
        assert snapshot["counters"]["mem.reads"] == 1
        assert snapshot["counters"]["mem.writes"] == 1
        assert snapshot["gauges"]["mem.row_buffer_hit_rate"] == 0.5

    def test_resilient_op_retry_depth_histogram(self):
        hub = TelemetryHub()
        hub.resilient_op(1, "clean")
        hub.resilient_op(3, "retried")
        snapshot = hub.metrics_dict()
        assert snapshot["counters"]["resilience.verdict.clean"] == 1
        assert snapshot["counters"]["resilience.verdict.retried"] == 1
        hist = snapshot["histograms"]["resilience.retry_depth"]
        assert hist["count"] == 2
        assert hist["counts"][0] == 1  # attempts == 1
        assert hist["counts"][2] == 1  # attempts == 3

    def test_activated_scopes_and_restores(self):
        hub_a, hub_b = TelemetryHub(), TelemetryHub()
        assert active_hub() is None
        with activated(hub_a):
            assert active_hub() is hub_a
            with activated(hub_b):
                assert active_hub() is hub_b
            assert active_hub() is hub_a
        assert active_hub() is None

    def test_device_op_per_op_cycles_and_energy(self):
        hub = TelemetryHub()
        hub.device_op("shift", cycles=3, energy_pj=0.6, count=3)
        hub.device_op("transverse_read", cycles=2, energy_pj=0.1)
        counters = hub.metrics_dict()["counters"]
        assert counters["device.shift.cycles"] == 3
        assert counters["device.shift.energy_pj"] == pytest.approx(0.6)
        assert counters["device.transverse_read.cycles"] == 2
        assert counters["device.cycles"] == 5


# ----------------------------------------------------------------------
# derived quantiles


class TestHistogramQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram("h", edges=(1, 2))
        assert h.quantile(0.5) is None
        d = h.as_dict()
        assert d["p50"] is None and d["p90"] is None and d["p99"] is None

    def test_quantile_bounds_validated(self):
        h = Histogram("h", edges=(1,))
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_single_value_collapses_all_quantiles(self):
        h = Histogram("h", edges=(10, 20))
        h.observe(7)
        for q in (0.0, 0.5, 0.9, 1.0):
            assert h.quantile(q) == pytest.approx(7.0)

    def test_interpolates_within_one_bucket(self):
        # 100 observations uniform over (10, 20]: p50 should sit near
        # the bucket's midpoint, p90 near its upper end.
        h = Histogram("h", edges=(10, 20, 30))
        for i in range(100):
            h.observe(10.1 + i * 0.099)
        assert h.quantile(0.5) == pytest.approx(15.0, abs=1.0)
        assert h.quantile(0.9) == pytest.approx(19.0, abs=1.0)
        assert h.quantile(1.0) == pytest.approx(h.max)

    def test_quantiles_across_buckets(self):
        h = Histogram("h", edges=(1, 2, 4, 8))
        for value in (0.5, 1.5, 1.6, 3.0, 3.5, 3.9, 5.0, 6.0, 7.0, 8.0):
            h.observe(value)
        p50 = h.quantile(0.5)
        assert 2 < p50 <= 4  # the 5th of 10 observations is 3.5
        p90 = h.quantile(0.9)
        assert 4 < p90 <= 8

    def test_overflow_bucket_clamps_to_observed_max(self):
        h = Histogram("h", edges=(1, 2))
        for value in (5, 50, 500):
            h.observe(value)
        # All mass in the overflow bucket: estimates interpolate between
        # the last edge and the observed max, never beyond.
        assert h.quantile(0.99) <= 500
        assert h.quantile(1.0) == pytest.approx(500)
        assert h.quantile(0.01) >= 2  # overflow bucket's lower bound

    def test_first_bucket_uses_observed_min_not_minus_infinity(self):
        h = Histogram("h", edges=(10, 20))
        h.observe(4)
        h.observe(6)
        p50 = h.quantile(0.5)
        assert 4 <= p50 <= 6

    def test_as_dict_exposes_p50_p90_p99(self):
        h = Histogram("h", edges=(1, 2, 4, 8, 16))
        for value in range(1, 11):
            h.observe(value)
        d = h.as_dict()
        assert d["p50"] == pytest.approx(h.quantile(0.50))
        assert d["p90"] == pytest.approx(h.quantile(0.90))
        assert d["p99"] == pytest.approx(h.quantile(0.99))
        assert d["p50"] <= d["p90"] <= d["p99"] <= h.max


# ----------------------------------------------------------------------
# chrome export edge cases


class TestChromeTraceEdgeCases:
    def test_empty_tracer_exports_only_metadata(self):
        doc = chrome_trace(Tracer())
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]
        json.dumps(doc)

    def test_null_tracer_exports_only_metadata(self):
        doc = chrome_trace(NULL_TRACER)
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]

    def test_deeply_nested_spans_preserve_containment(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        depth = 40
        spans = []
        for i in range(depth):
            span = tracer.span(f"level{i}")
            span.__enter__()
            spans.append(span)
            clock.advance(1e-6)
        for span in reversed(spans):
            clock.advance(1e-6)
            span.__exit__(None, None, None)
        doc = chrome_trace(tracer)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == depth
        # Start-time sorted = outermost first; each child is contained
        # within its parent's interval.
        for parent, child in zip(events, events[1:]):
            assert parent["ts"] <= child["ts"]
            assert (
                child["ts"] + child["dur"]
                <= parent["ts"] + parent["dur"] + 1e-9
            )

    def test_instants_interleave_with_spans_by_timestamp(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        tracer.instant("before")  # ts 0
        clock.advance(5e-6)
        with tracer.span("work"):  # ts 5
            clock.advance(2e-6)
            tracer.instant("during")  # ts 7
            clock.advance(2e-6)
        clock.advance(1e-6)
        tracer.instant("after")  # ts 10
        doc = chrome_trace(tracer)
        names = [e["name"] for e in doc["traceEvents"][1:]]
        assert names == ["before", "work", "during", "after"]
        timestamps = [e["ts"] for e in doc["traceEvents"][1:]]
        assert timestamps == sorted(timestamps)

    def test_equal_timestamps_keep_parent_before_child(self):
        # Zero-duration nesting: the stable sort must not reorder a
        # child before the parent that contains it.
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        doc = chrome_trace(tracer)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert names == ["outer", "inner"]
