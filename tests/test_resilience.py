"""Tests for the resilient PIM execution layer.

Covers the detection primitives (misalignment tracking, guard-row
position check, TR re-read voting), the transactional retry/escalation
executor, the DBC health registry with placement remapping, and the
fault-path corners of the injector itself.
"""

import pytest

from repro import (
    CoruscantSystem,
    DataLossError,
    FaultConfig,
    MemoryGeometry,
    RetryPolicy,
    UncorrectableFaultError,
)
from repro.arch.dbc import DomainBlockCluster
from repro.arch.placement import pim_remap_candidates, remap_pim_dbc
from repro.core.addition import MultiOperandAdder
from repro.core.isa import Address, CpimInstruction, CpimOp
from repro.device.faults import FaultInjector
from repro.device.nanowire import AccessPort, Nanowire
from repro.device.parameters import DeviceParameters
from repro.resilience import (
    DBCHealth,
    DBCHealthRegistry,
    FaultDetector,
    enable_tr_voting,
)


def make_dbc(tracks=8, **kwargs):
    return DomainBlockCluster(
        tracks=tracks, domains=32, params=DeviceParameters(trd=7), **kwargs
    )


def add_instruction(blocksize=16, operands=2):
    address = Address(bank=0, subarray=0, tile=0, dbc=0, row=0)
    return CpimInstruction(
        op=CpimOp.ADD,
        blocksize=blocksize,
        src=address,
        dest=address,
        operands=operands,
    )


def make_system(rate=0.0, seed=0, policy=None, shift_rate=0.0, tracks=16):
    return CoruscantSystem(
        trd=7,
        geometry=MemoryGeometry(tracks_per_dbc=tracks),
        fault_config=FaultConfig(
            tr_fault_rate=rate, shift_fault_rate=shift_rate, seed=seed
        ),
        resilience=policy if policy is not None else False,
    )


class TestFaultInjectorPaths:
    """Satellite coverage: every injector corner at deterministic rates."""

    def test_counters_increment_at_rate_one(self):
        injector = FaultInjector(
            FaultConfig(tr_fault_rate=1.0, shift_fault_rate=1.0, seed=2)
        )
        for _ in range(10):
            injector.perturb_tr_level(3, 7)
            injector.perturb_shift(1)
        assert injector.tr_faults_injected == 10
        assert injector.shift_faults_injected == 10

    def test_tr_clamping_at_bounds(self):
        injector = FaultInjector(FaultConfig(tr_fault_rate=1.0, seed=7))
        for _ in range(50):
            assert injector.perturb_tr_level(0, 7) == 1
            assert injector.perturb_tr_level(7, 7) == 6
            got = injector.perturb_tr_level(0, 3)
            assert got == 1
            assert injector.perturb_tr_level(3, 3) == 2

    def test_shift_fault_under_over_split(self):
        injector = FaultInjector(FaultConfig(shift_fault_rate=1.0, seed=11))
        forward = {injector.perturb_shift(1) for _ in range(200)}
        backward = {injector.perturb_shift(-1) for _ in range(200)}
        assert forward == {0, 2}  # under- and over-shift both occur
        assert backward == {0, -2}

    def test_faulty_over_shift_ejects_data_domain(self):
        # Seed 0's first shift fault is an over-shift (x2); with one
        # overhead domain on the right the second step ejects data.
        wire = Nanowire(
            4,
            [AccessPort(0)],
            overhead=(4, 1),
            injector=FaultInjector(
                FaultConfig(shift_fault_rate=1.0, seed=0)
            ),
        )
        wire.load([1, 1, 1, 1])
        with pytest.raises(DataLossError):
            wire.shift(1)


class TestMisalignmentTracking:
    def test_fault_free_wire_stays_aligned(self):
        wire = Nanowire(8, [AccessPort(2), AccessPort(5)])
        wire.shift(1, 2)
        wire.shift(-1, 1)
        assert wire.offset == wire.commanded_offset == 1
        assert wire.misalignment == 0

    def test_shift_fault_diverges_commanded_from_physical(self):
        injector = FaultInjector(FaultConfig(shift_fault_rate=1.0, seed=3))
        wire = Nanowire(8, [AccessPort(2), AccessPort(5)], injector=injector)
        wire.shift(1)
        assert wire.commanded_offset == 1
        assert wire.offset in (0, 2)
        assert wire.misalignment != 0

    def test_realign_restores_position_and_data(self):
        injector = FaultInjector(FaultConfig(shift_fault_rate=1.0, seed=3))
        wire = Nanowire(8, [AccessPort(2), AccessPort(5)], injector=injector)
        pattern = [1, 0, 1, 1, 0, 0, 1, 0]
        wire.load(pattern)
        wire.shift(1)
        corrected = wire.realign()
        assert corrected == 1
        assert wire.misalignment == 0
        assert wire.dump() == pattern
        assert wire.stats.count("realign") == 1

    def test_checkpoint_restore_roundtrip(self):
        wire = Nanowire(8, [AccessPort(2), AccessPort(5)])
        wire.load([1, 0, 1, 0, 1, 0, 1, 0])
        saved = wire.checkpoint()
        wire.shift(1, 2)
        wire.poke_row(0, 0)
        wire.restore(saved)
        assert wire.dump() == [1, 0, 1, 0, 1, 0, 1, 0]
        assert wire.offset == 0

    def test_restore_rejects_foreign_checkpoint(self):
        a = Nanowire(8, [AccessPort(2), AccessPort(5)])
        b = Nanowire(16, [AccessPort(2), AccessPort(5)])
        with pytest.raises(ValueError):
            b.restore(a.checkpoint())


class TestDbcPositionCheck:
    def test_aligned_cluster_reports_clean(self):
        dbc = make_dbc()
        dbc.shift(1, 3)
        assert dbc.position_error_check() == []
        assert dbc.commanded_offset == 3
        assert dbc.stats.count("position_check") == 1

    def test_misaligned_tracks_found_and_repaired(self):
        injector = FaultInjector(FaultConfig(shift_fault_rate=1.0, seed=5))
        dbc = make_dbc(injector=injector)
        rows = {r: [r % 2] * dbc.tracks for r in (0, 5, 11)}
        for r, bits in rows.items():
            dbc.poke_row(r, bits)
        dbc.shift(1, 2)
        misaligned = dbc.position_error_check()
        assert misaligned  # total fault rate must knock tracks out
        worst = dbc.realign()
        assert worst >= 1
        assert dbc.position_error_check() == []
        # realign happens relative to the *commanded* offset, so the
        # believed rows read correctly again afterwards.
        assert dbc.commanded_offset == 2
        assert dbc.stats.count("realign") == 1

    def test_snapshot_restore_roundtrip(self):
        dbc = make_dbc()
        dbc.poke_row(4, [1] * dbc.tracks)
        saved = dbc.snapshot()
        dbc.shift(1, 2)
        dbc.poke_row(4, [0] * dbc.tracks)
        dbc.restore(saved)
        assert dbc.peek_row(4) == [1] * dbc.tracks
        assert dbc.commanded_offset == 0


class TestSenseVoting:
    def test_voting_disabled_by_default_costs_one_tr(self):
        dbc = make_dbc()
        dbc.transverse_read_all()
        assert dbc.tr_vote_reads == 1
        assert dbc.vote_stats.votes == 0
        assert dbc.stats.cycles == dbc.params.transverse_read.cycles

    def test_voting_triples_tr_cost(self):
        dbc = make_dbc()
        enable_tr_voting(dbc, 3)
        dbc.transverse_read_all()
        assert dbc.stats.cycles == 3 * dbc.params.transverse_read.cycles
        assert (
            dbc.vote_stats.overhead_cycles
            == 2 * dbc.params.transverse_read.cycles
        )

    def test_vote_out_votes_most_injected_tr_faults(self):
        # Two same-direction faults in one 3-vote can still win the
        # majority, so voting is compared against the bare sense path
        # under the identical fault stream rather than asserted perfect.
        def wrong_reads(vote):
            injector = FaultInjector(
                FaultConfig(tr_fault_rate=0.05, seed=0)
            )
            dbc = make_dbc(tracks=32, injector=injector)
            dbc.poke_window_slot(2, [1] * dbc.tracks)
            if vote:
                enable_tr_voting(dbc, 3)
            wrong = 0
            for _ in range(20):
                wrong += sum(
                    1 for v in dbc.transverse_read_all() if v != 1
                )
            return wrong, dbc.vote_stats

        voted_wrong, stats = wrong_reads(True)
        bare_wrong, _ = wrong_reads(False)
        assert voted_wrong < bare_wrong
        assert stats.corrected > 0
        assert stats.disagreements >= stats.corrected

    def test_enable_tr_voting_rejects_even_counts(self):
        with pytest.raises(ValueError):
            enable_tr_voting(make_dbc(), 2)

    def test_detector_reports_attempt_deltas(self):
        injector = FaultInjector(FaultConfig(tr_fault_rate=0.3, seed=4))
        dbc = make_dbc(tracks=16, injector=injector)
        detector = FaultDetector(RetryPolicy())
        detector.arm(dbc)
        dbc.transverse_read_all()
        report = detector.scan(dbc)
        assert report.disagreements > 0
        assert report.clean  # all disagreements resolved by majority
        assert report.check_cycles > 0
        detector.mark(dbc)
        assert detector.scan(dbc).disagreements == 0


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts >= 1
        assert policy.tr_vote_reads % 2 == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(tr_vote_reads=4)
        with pytest.raises(ValueError):
            RetryPolicy(escalation_nmr=2)
        with pytest.raises(ValueError):
            RetryPolicy(degrade_after=5, fail_after=2)


class TestHealthRegistry:
    def test_unknown_dbc_is_healthy(self):
        registry = DBCHealthRegistry()
        assert registry.status((0, 0, 0, 0)) is DBCHealth.HEALTHY
        assert registry.is_usable((0, 0, 0, 0))

    def test_uncorrectables_degrade_then_fail(self):
        registry = DBCHealthRegistry(degrade_after=2, fail_after=3)
        key = (1, 2, 0, 0)
        assert registry.record_uncorrectable(key) is DBCHealth.HEALTHY
        assert registry.record_uncorrectable(key) is DBCHealth.DEGRADED
        assert registry.is_usable(key)
        assert registry.record_uncorrectable(key) is DBCHealth.FAILED
        assert not registry.is_usable(key)
        assert registry.failed == [key]

    def test_transients_never_degrade(self):
        registry = DBCHealthRegistry(degrade_after=1, fail_after=1)
        key = (0, 0, 0, 0)
        for _ in range(100):
            registry.record_transient(key)
        assert registry.status(key) is DBCHealth.HEALTHY
        assert registry.report()[key].transients == 100

    def test_mark_and_reset(self):
        registry = DBCHealthRegistry()
        key = (3, 1, 0, 0)
        registry.mark_failed(key)
        assert registry.status(key) is DBCHealth.FAILED
        registry.reset(key)
        assert registry.status(key) is DBCHealth.HEALTHY


class TestPlacementRemap:
    def test_same_bank_subarrays_come_first(self):
        geometry = MemoryGeometry()
        candidates = list(pim_remap_candidates(0, 0, geometry))
        same_bank = geometry.subarrays_per_bank - 1
        assert all(b == 0 for b, _ in candidates[:same_bank])
        assert candidates[0] == (0, 1)
        assert candidates[same_bank][0] != 0

    def test_usable_home_is_kept(self):
        geometry = MemoryGeometry()
        assert remap_pim_dbc(2, 3, geometry, lambda key: True) == (2, 3)

    def test_failed_home_is_remapped(self):
        geometry = MemoryGeometry()
        registry = DBCHealthRegistry()
        registry.mark_failed((0, 0, 0, 0))
        registry.mark_failed((0, 1, 0, 0))
        assert remap_pim_dbc(
            0, 0, geometry, registry.is_usable
        ) == (0, 2)

    def test_all_failed_raises(self):
        geometry = MemoryGeometry(banks=1, subarrays_per_bank=2)
        with pytest.raises(LookupError):
            remap_pim_dbc(0, 0, geometry, lambda key: False)


class TestResilientExecutor:
    def stage(self, system, words=(3, 4)):
        dbc = system.pim_dbc()
        adder = MultiOperandAdder(dbc)
        adder.stage_words(list(words), 8, zero_extend_to=16)
        return dbc

    def test_clean_op_passes_through(self):
        system = make_system(policy=RetryPolicy())
        self.stage(system, (3, 4))
        result = system.execute(add_instruction())
        assert result.values[0] == 7
        stats = system.executor.stats
        assert stats.operations == 1
        assert stats.attempts == 1
        assert stats.retries == 0
        # voting ran (3x TR) even though nothing faulted
        assert stats.overhead_cycles > 0

    def test_retry_recovers_unresolved_vote(self):
        # At rate 0.6 / seed 3 the first attempt leaves an unresolved
        # 3-way vote; the rollback-and-retry commits a clean attempt.
        system = make_system(
            rate=0.6, seed=3,
            policy=RetryPolicy(max_attempts=2, escalation_nmr=3),
        )
        self.stage(system)
        system.execute(add_instruction())
        stats = system.executor.stats
        assert stats.retries == 1
        assert stats.faults_detected > 0
        assert stats.overhead_cycles > 0
        assert system.health.report()[(0, 0, 0, 0)].transients >= 1

    def test_escalation_corrects_persistent_disagreement(self):
        system = make_system(
            rate=0.8, seed=2,
            policy=RetryPolicy(max_attempts=2, escalation_nmr=3),
        )
        self.stage(system)
        system.execute(add_instruction())
        stats = system.executor.stats
        assert stats.escalations == 1
        assert stats.escalation_corrected == 1
        assert stats.uncorrectable == 0

    def test_uncorrectable_raises_and_charges_health(self):
        policy = RetryPolicy(
            max_attempts=2, escalation_nmr=3,
            degrade_after=1, fail_after=2,
        )
        system = make_system(rate=0.6, seed=1, policy=policy)
        self.stage(system)
        with pytest.raises(UncorrectableFaultError):
            system.execute(add_instruction())
        assert system.executor.stats.uncorrectable == 1
        assert system.health.status((0, 0, 0, 0)) is DBCHealth.DEGRADED

    def test_repeated_uncorrectables_fail_and_remap(self):
        policy = RetryPolicy(
            max_attempts=1, escalation_nmr=3,
            degrade_after=1, fail_after=2,
        )
        system = make_system(rate=0.6, seed=1, policy=policy)
        failures = 0
        for _ in range(20):
            self.stage(system)
            try:
                system.execute(add_instruction())
            except UncorrectableFaultError:
                failures += 1
            if not system.health.is_usable((0, 0, 0, 0)):
                break
        assert failures >= 2
        assert not system.health.is_usable((0, 0, 0, 0))
        # Work aimed at the dead cluster now lands next door.
        assert system.pim_home(0, 0) == (0, 1)

    def test_executor_remaps_failed_dbc(self):
        system = make_system(policy=RetryPolicy())
        system.health.mark_failed((0, 0, 0, 0))
        self.stage(system, (3, 4))  # pim_dbc() already follows the remap
        result = system.execute(add_instruction())
        assert result.values[0] == 7
        assert system.executor.stats.remaps == 1


class TestSystemDegradation:
    def test_forced_failed_dbc_completes_via_remap(self):
        # Acceptance: a failed DBC must not crash the workload.
        system = CoruscantSystem(
            trd=7,
            geometry=MemoryGeometry(tracks_per_dbc=64),
            resilience=True,
        )
        system.health.mark_failed((0, 0, 0, 0))
        result = system.add([13, 200, 7, 99, 55], n_bits=8)
        assert result.value == 374
        assert system.pim_home(0, 0) == (0, 1)

    def test_remap_works_without_resilience_policy(self):
        system = CoruscantSystem(
            trd=7, geometry=MemoryGeometry(tracks_per_dbc=64)
        )
        system.health.mark_failed((0, 0, 0, 0))
        assert system.add([1, 2], n_bits=8).value == 3

    def test_resilient_system_reduces_injected_fault_errors(self):
        def wrong_adds(resilience):
            system = CoruscantSystem(
                trd=7,
                geometry=MemoryGeometry(tracks_per_dbc=32),
                fault_config=FaultConfig(tr_fault_rate=0.05, seed=0),
                resilience=resilience,
            )
            wrong = sum(
                1
                for _ in range(20)
                if system.add([10, 20, 30], n_bits=8).value != 60
            )
            return wrong, system

        resilient_wrong, system = wrong_adds(True)
        bare_wrong, _ = wrong_adds(False)
        assert bare_wrong > 0
        assert resilient_wrong < bare_wrong
        assert system.pim_dbc().vote_stats.corrected > 0


class TestProactiveNmr:
    """Satellite: NMR voting corrects injected TR faults end-to-end."""

    def make_nmr_system(self, rate, seed):
        from repro.resilience.breaker import BreakerConfig, ProtectionLevel

        return CoruscantSystem(
            trd=7,
            geometry=MemoryGeometry(tracks_per_dbc=16),
            fault_config=FaultConfig(tr_fault_rate=rate, seed=seed),
            resilience=RetryPolicy(),
            adaptive=BreakerConfig(initial=ProtectionLevel.NMR),
        )

    def staged_add(self, system):
        dbc = system.pim_dbc()
        MultiOperandAdder(dbc).stage_words([3, 4], 8, zero_extend_to=16)
        return add_instruction()

    def test_nmr_outvotes_faulty_replica(self):
        # At 5% / seed 0 one replica diverges and the 3-MR majority
        # (realised through the in-memory C' vote) discards it.
        system = self.make_nmr_system(rate=0.05, seed=0)
        result = system.execute(self.staged_add(system))
        assert result.values[0] == 7
        stats = system.executor.stats
        assert stats.nmr_ops == 1
        assert stats.faults_detected >= 1
        assert stats.hw_votes == 1
        assert stats.uncorrectable == 0

    def test_no_majority_widens_redundancy(self):
        # At 8% / seed 1 the 3 replicas split three ways; widening to
        # 5-MR assembles a majority and still lands the right answer.
        system = self.make_nmr_system(rate=0.08, seed=1)
        result = system.execute(self.staged_add(system))
        assert result.values[0] == 7
        stats = system.executor.stats
        assert stats.nmr_widenings == 1
        assert stats.uncorrectable == 0

    def test_widening_exhaustion_is_uncorrectable(self):
        # At 20% even 7-MR cannot agree: the op fails loudly, after
        # trying every supported redundancy degree.
        system = self.make_nmr_system(rate=0.2, seed=0)
        with pytest.raises(UncorrectableFaultError, match="7-MR"):
            system.execute(self.staged_add(system))
        stats = system.executor.stats
        assert stats.nmr_widenings == 2  # tried 5-MR and 7-MR too
        assert stats.uncorrectable == 1
