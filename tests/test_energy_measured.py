"""The device-level energy roll-up reproduces the Table III anchors."""

import pytest

from repro.arch.dbc import DomainBlockCluster
from repro.core.addition import MultiOperandAdder
from repro.core.bulk_bitwise import BulkBitwiseUnit
from repro.core.pim_logic import BulkOp
from repro.device.parameters import DeviceParameters


def fresh(trd=7, tracks=64):
    return DomainBlockCluster(
        tracks=tracks, domains=32, params=DeviceParameters(trd=trd)
    )


class TestMeasuredEnergies:
    def test_8bit_add_energy_matches_table3(self):
        """The simulated op sequence rolls up to the published 22.14 pJ."""
        dbc = fresh()
        adder = MultiOperandAdder(dbc)
        adder.stage_words([13, 200, 7, 99, 55], 8, zero_extend_to=8)
        staged = dbc.stats.energy_pj
        adder.run(5, result_bits=8)
        compute = dbc.stats.energy_pj - staged
        assert compute == pytest.approx(22.14, rel=0.01)

    def test_energy_scales_with_bits(self):
        e = {}
        for n_bits in (4, 8):
            dbc = fresh()
            adder = MultiOperandAdder(dbc)
            words = [3, 5] if n_bits == 4 else [3, 5]
            adder.stage_words(words, n_bits, zero_extend_to=n_bits)
            staged = dbc.stats.energy_pj
            adder.run(2, result_bits=n_bits)
            e[n_bits] = dbc.stats.energy_pj - staged
        assert e[8] == pytest.approx(2 * e[4], rel=0.1)

    def test_bulk_op_energy_scales_with_tracks(self):
        e = {}
        for tracks in (32, 64):
            dbc = fresh(tracks=tracks)
            unit = BulkBitwiseUnit(dbc)
            rows = [[1] * tracks, [0] * tracks]
            unit.stage_operands(BulkOp.OR, rows)
            before = dbc.stats.energy_pj
            unit.execute(BulkOp.OR, 2)
            e[tracks] = dbc.stats.energy_pj - before
        assert e[64] == pytest.approx(2 * e[32], rel=0.01)

    def test_shift_energy_proportional_to_distance(self):
        dbc = fresh()
        before = dbc.stats.energy_pj
        dbc.shift(1, 1)
        one = dbc.stats.energy_pj - before
        dbc.shift(1, 3)
        three = dbc.stats.energy_pj - before - one
        assert three == pytest.approx(3 * one, rel=0.01)
