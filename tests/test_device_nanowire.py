"""Unit tests for the DWM nanowire model."""

import pytest

from repro.device.nanowire import (
    AccessPort,
    DataLossError,
    Nanowire,
    default_overhead,
)
from repro.device.parameters import DeviceParameters


def make_wire(num_data=32, ports=(14, 20), **kwargs):
    return Nanowire(
        num_data, [AccessPort(p) for p in ports], **kwargs
    )


class TestGeometry:
    def test_paper_overhead_for_tr_port_placement(self):
        # Section III-A: ports at 14 and 20 cost 25 overhead domains.
        left, right = default_overhead(32, (14, 20))
        assert left + right == 25

    def test_single_port_overhead(self):
        # 2Y-1 total domains for a single central port (Section III-A).
        left, right = default_overhead(32, (31,))
        wire = Nanowire(32, [AccessPort(31)])
        assert wire.length == 32 + left + right

    def test_port_positions_fixed(self):
        wire = make_wire()
        p0 = wire.port_physical_position(0)
        wire.shift(1, 3)
        assert wire.port_physical_position(0) == p0

    def test_rejects_port_outside_data(self):
        with pytest.raises(ValueError):
            make_wire(ports=(40,))

    def test_rejects_empty_ports(self):
        with pytest.raises(ValueError):
            Nanowire(8, [])


class TestShift:
    def test_shift_moves_rows_under_port(self):
        wire = make_wire()
        row_before = wire.row_under_port(0)
        wire.shift(1)
        assert wire.row_under_port(0) == row_before - 1

    def test_align_then_read(self):
        wire = make_wire()
        wire.poke_row(5, 1)
        wire.align(5, 0)
        assert wire.read(0) == 1

    def test_shift_preserves_data(self):
        wire = make_wire()
        pattern = [i % 2 for i in range(32)]
        wire.load(pattern)
        wire.shift(1, 5)
        wire.shift(-1, 5)
        assert wire.dump() == pattern

    def test_data_loss_raises(self):
        wire = make_wire()
        with pytest.raises(DataLossError):
            wire.shift(1, wire.overhead_right + 1)

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            make_wire().shift(2)

    def test_shift_records_cost(self):
        wire = make_wire()
        wire.shift(1, 3)
        assert wire.stats.count("shift") == 3
        assert wire.stats.cycles == 3


class TestReadWrite:
    def test_write_then_read(self):
        wire = make_wire()
        wire.write(0, 1)
        assert wire.read(0) == 1

    def test_write_rejects_non_bit(self):
        with pytest.raises(ValueError):
            make_wire().write(0, 2)

    def test_read_only_port(self):
        wire = Nanowire(
            16, [AccessPort(4), AccessPort(10, read_only=True)]
        )
        with pytest.raises(ValueError):
            wire.write(1, 1)

    def test_costs_recorded(self):
        wire = make_wire()
        wire.write(0, 1)
        wire.read(0)
        assert wire.stats.count("write") == 1
        assert wire.stats.count("read") == 1


class TestTransverseRead:
    def test_counts_ones_in_window(self):
        wire = make_wire()
        # Window covers data rows 14..20 at offset 0.
        for row in (14, 16, 20):
            wire.poke_row(row, 1)
        assert wire.transverse_read(0, 1) == 3

    def test_window_includes_both_heads(self):
        wire = make_wire()
        wire.poke_row(14, 1)
        wire.poke_row(20, 1)
        assert wire.transverse_read(0, 1) == 2

    def test_rejects_window_beyond_trd(self):
        params = DeviceParameters(trd=3)
        wire = make_wire(ports=(14, 20), params=params)
        with pytest.raises(ValueError):
            wire.transverse_read(0, 1)

    def test_segmented_span(self):
        wire = make_wire()
        wire.poke_row(15, 1)
        lo = wire.row_physical_position(15)
        assert wire.transverse_read_span(lo, lo + 2) == 1

    def test_zero_window(self):
        wire = make_wire()
        assert wire.transverse_read(0, 1) == 0


class TestTransverseWrite:
    def test_segment_shifts_right(self):
        wire = make_wire()
        for i, row in enumerate(range(14, 21)):
            wire.poke_row(row, 1 if i == 0 else 0)
        ejected = wire.transverse_write(1)
        assert ejected == 0
        # Old head value moved one right; new bit under left head.
        assert wire.peek_row(14) == 1
        assert wire.peek_row(15) == 1

    def test_ejects_right_head_bit(self):
        wire = make_wire()
        wire.poke_row(20, 1)
        assert wire.transverse_write(0) == 1
        assert wire.peek_row(20) == 0

    def test_outside_window_untouched(self):
        wire = make_wire()
        wire.poke_row(5, 1)
        wire.poke_row(25, 1)
        wire.transverse_write(1)
        assert wire.peek_row(5) == 1
        assert wire.peek_row(25) == 1

    def test_full_rotation_restores_order(self):
        wire = make_wire()
        pattern = [1, 0, 1, 1, 0, 0, 1]
        for i, row in enumerate(range(14, 21)):
            wire.poke_row(row, pattern[i])
        for _ in range(7):
            bit = wire.peek_physical(wire.port_physical_position(1))
            wire.transverse_write(bit)
        assert [wire.peek_row(r) for r in range(14, 21)] == pattern
