"""Unit tests for device statistics accounting."""

from repro.device.stats import DeviceStats
from repro.device.parameters import DeviceParameters, TimingEnergy
from repro.telemetry import TelemetryHub, runtime

import pytest


class _RecordingSink:
    """Minimal telemetry sink: records every device_op call."""

    def __init__(self):
        self.calls = []

    def device_op(self, op, cycles, energy_pj, count):
        self.calls.append((op, cycles, energy_pj, count))


class TestDeviceStats:
    def test_record_accumulates(self):
        stats = DeviceStats()
        stats.record("shift", 1, 0.5)
        stats.record("shift", 1, 0.5, count=3)
        assert stats.count("shift") == 4
        assert stats.cycles == 4
        assert stats.energy_pj == pytest.approx(2.0)

    def test_merge(self):
        a = DeviceStats()
        b = DeviceStats()
        a.record("read", 1, 0.4)
        b.record("read", 1, 0.4)
        b.record("write", 1, 0.6)
        a.merge(b)
        assert a.count("read") == 2
        assert a.count("write") == 1
        assert a.cycles == 3

    def test_reset(self):
        stats = DeviceStats()
        stats.record("tr", 1, 1.0)
        stats.reset()
        assert stats.cycles == 0
        assert stats.energy_pj == 0.0
        assert stats.count("tr") == 0

    def test_unknown_op_counts_zero(self):
        assert DeviceStats().count("nope") == 0


class TestBreakdowns:
    def test_record_attributes_cycles_and_energy_per_op(self):
        stats = DeviceStats()
        stats.record("shift", 1, 0.5, count=4)
        stats.record("tr", 2, 1.25, count=3)
        assert stats.cycles_for("shift") == 4
        assert stats.cycles_for("tr") == 6
        assert stats.energy_for("shift") == pytest.approx(2.0)
        assert stats.energy_for("tr") == pytest.approx(3.75)
        assert stats.cycles_for("nope") == 0
        assert stats.energy_for("nope") == 0.0

    def test_breakdowns_sum_to_totals(self):
        stats = DeviceStats()
        stats.record("shift", 1, 0.5, count=7)
        stats.record("read", 1, 0.4, count=2)
        stats.record("tw", 3, 2.0)
        assert sum(stats.op_cycles.values()) == stats.cycles
        assert sum(stats.op_energy_pj.values()) == pytest.approx(
            stats.energy_pj
        )

    def test_merge_folds_breakdowns(self):
        a = DeviceStats()
        b = DeviceStats()
        a.record("read", 1, 0.4, count=2)
        b.record("read", 1, 0.4, count=3)
        b.record("write", 2, 0.6)
        a.merge(b)
        assert a.cycles_for("read") == 5
        assert a.cycles_for("write") == 2
        assert a.energy_for("read") == pytest.approx(2.0)
        assert a.energy_for("write") == pytest.approx(0.6)

    def test_reset_clears_breakdowns(self):
        stats = DeviceStats()
        stats.record("tr", 2, 1.0, count=5)
        stats.reset()
        assert stats.op_cycles == {}
        assert stats.op_energy_pj == {}
        assert stats.cycles_for("tr") == 0
        assert stats.energy_for("tr") == 0.0


class TestAsDict:
    def test_snapshot_contents(self):
        stats = DeviceStats()
        stats.record("shift", 1, 0.5, count=2)
        stats.record("tr", 2, 1.0)
        snapshot = stats.as_dict()
        assert snapshot == {
            "op_counts": {"shift": 2, "tr": 1},
            "op_cycles": {"shift": 2, "tr": 2},
            "op_energy_pj": {"shift": 1.0, "tr": 1.0},
            "cycles": 4,
            "energy_pj": 2.0,
        }

    def test_snapshot_is_non_destructive(self):
        stats = DeviceStats()
        stats.record("read", 1, 0.4, count=3)
        first = stats.as_dict()
        second = stats.as_dict()
        assert first == second

    def test_snapshot_mutation_does_not_leak_back(self):
        stats = DeviceStats()
        stats.record("read", 1, 0.4)
        snapshot = stats.as_dict()
        snapshot["op_counts"]["read"] = 999
        snapshot["op_cycles"]["read"] = 999
        snapshot["op_energy_pj"]["read"] = 999.0
        assert stats.count("read") == 1
        assert stats.cycles_for("read") == 1
        assert stats.energy_for("read") == pytest.approx(0.4)


class TestSinkPublishing:
    def test_attached_sink_receives_every_record(self):
        sink = _RecordingSink()
        stats = DeviceStats(sink=sink)
        stats.record("shift", 1, 0.5, count=4)
        stats.record("tr", 2, 1.0)
        assert sink.calls == [
            ("shift", 4, 2.0, 4),
            ("tr", 2, 1.0, 1),
        ]

    def test_no_sink_no_publish(self):
        stats = DeviceStats()
        stats.record("shift", 1, 0.5)  # must not raise
        assert stats.cycles == 1

    def test_active_hub_is_fallback_sink(self):
        hub = TelemetryHub()
        stats = DeviceStats()
        with runtime.activated(hub):
            stats.record("tr", 2, 1.0, count=3)
        counters = hub.metrics.as_dict()["counters"]
        assert counters["device.tr.count"] == 3
        assert counters["device.cycles"] == 6

    def test_attached_sink_wins_over_active_hub(self):
        sink = _RecordingSink()
        hub = TelemetryHub()
        stats = DeviceStats(sink=sink)
        with runtime.activated(hub):
            stats.record("read", 1, 0.4)
        assert sink.calls == [("read", 1, 0.4, 1)]
        assert hub.metrics.as_dict()["counters"] == {}


class TestParameters:
    def test_defaults(self):
        p = DeviceParameters()
        assert p.trd == 7
        assert p.sense_levels == 8

    def test_rejects_small_trd(self):
        with pytest.raises(ValueError):
            DeviceParameters(trd=1)

    def test_rejects_bad_fault_rate(self):
        with pytest.raises(ValueError):
            DeviceParameters(tr_fault_rate=2.0)

    def test_timing_energy_validation(self):
        with pytest.raises(ValueError):
            TimingEnergy(-1, 0.5)
        with pytest.raises(ValueError):
            TimingEnergy(1, -0.5)
