"""Unit tests for device statistics accounting."""

from repro.device.stats import DeviceStats
from repro.device.parameters import DeviceParameters, TimingEnergy

import pytest


class TestDeviceStats:
    def test_record_accumulates(self):
        stats = DeviceStats()
        stats.record("shift", 1, 0.5)
        stats.record("shift", 1, 0.5, count=3)
        assert stats.count("shift") == 4
        assert stats.cycles == 4
        assert stats.energy_pj == pytest.approx(2.0)

    def test_merge(self):
        a = DeviceStats()
        b = DeviceStats()
        a.record("read", 1, 0.4)
        b.record("read", 1, 0.4)
        b.record("write", 1, 0.6)
        a.merge(b)
        assert a.count("read") == 2
        assert a.count("write") == 1
        assert a.cycles == 3

    def test_reset(self):
        stats = DeviceStats()
        stats.record("tr", 1, 1.0)
        stats.reset()
        assert stats.cycles == 0
        assert stats.energy_pj == 0.0
        assert stats.count("tr") == 0

    def test_unknown_op_counts_zero(self):
        assert DeviceStats().count("nope") == 0


class TestParameters:
    def test_defaults(self):
        p = DeviceParameters()
        assert p.trd == 7
        assert p.sense_levels == 8

    def test_rejects_small_trd(self):
        with pytest.raises(ValueError):
            DeviceParameters(trd=1)

    def test_rejects_bad_fault_rate(self):
        with pytest.raises(ValueError):
            DeviceParameters(tr_fault_rate=2.0)

    def test_timing_energy_validation(self):
        with pytest.raises(ValueError):
            TimingEnergy(-1, 0.5)
        with pytest.raises(ValueError):
            TimingEnergy(1, -0.5)
