"""Unit tests for the seven-level sense amplifier."""

import pytest

from repro.core.sense_amp import SenseAmplifier


class TestSense:
    def test_thermometer_code(self):
        sa = SenseAmplifier(7)
        assert sa.sense(0) == [0] * 7
        assert sa.sense(3) == [1, 1, 1, 0, 0, 0, 0]
        assert sa.sense(7) == [1] * 7

    def test_roundtrip(self):
        sa = SenseAmplifier(7)
        for level in range(8):
            assert sa.level(sa.sense(level)) == level

    def test_smaller_trd(self):
        sa = SenseAmplifier(3)
        assert sa.sense(2) == [1, 1, 0]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SenseAmplifier(7).sense(8)
        with pytest.raises(ValueError):
            SenseAmplifier(7).sense(-1)


class TestLevelDecode:
    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            SenseAmplifier(7).level([1, 0])

    def test_rejects_non_monotone(self):
        with pytest.raises(ValueError):
            SenseAmplifier(3).level([1, 0, 1])

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            SenseAmplifier(3).level([1, 2, 0])
