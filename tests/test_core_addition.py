"""Unit tests for CORUSCANT multi-operand addition."""

import pytest

from repro.arch.dbc import DomainBlockCluster
from repro.core.addition import MultiOperandAdder, max_addition_operands
from repro.device.parameters import DeviceParameters


def make_adder(tracks=64, trd=7):
    dbc = DomainBlockCluster(
        tracks=tracks, domains=32, params=DeviceParameters(trd=trd)
    )
    return MultiOperandAdder(dbc), dbc


class TestOperandLimits:
    def test_paper_limits(self):
        # TRD 7 -> five operands; TRD 3 -> two (Sections III-C, V-A).
        assert max_addition_operands(7) == 5
        assert max_addition_operands(5) == 3
        assert max_addition_operands(3) == 2

    def test_rejects_tiny_trd(self):
        with pytest.raises(ValueError):
            max_addition_operands(2)

    def test_adder_rejects_too_many(self):
        adder, _ = make_adder()
        with pytest.raises(ValueError):
            adder.add_words([1, 2, 3, 4, 5, 6], 8)


class TestCorrectness:
    @pytest.mark.parametrize(
        "words",
        [
            [0, 0],
            [255, 255],
            [1, 2, 3],
            [13, 200, 7, 99, 55],
            [255, 255, 255, 255, 255],
            [128, 64, 32, 16, 8],
        ],
    )
    def test_exact_sum(self, words):
        adder, _ = make_adder()
        assert adder.add_words(words, 8).value == sum(words)

    def test_single_operand(self):
        adder, _ = make_adder()
        assert adder.add_words([42], 8).value == 42

    def test_trd3_two_operand(self):
        adder, _ = make_adder(trd=3)
        assert adder.add_words([200, 100], 8).value == 300

    def test_trd5_three_operand(self):
        adder, _ = make_adder(trd=5)
        assert adder.add_words([200, 100, 255], 8).value == 555

    def test_wide_operands(self):
        adder, _ = make_adder(tracks=64)
        words = [40000, 1, 65535, 12345, 2]
        assert adder.add_words(words, 16).value == sum(words)

    def test_mod_semantics_when_truncated(self):
        adder, _ = make_adder()
        words = [200, 100, 50, 25, 12]
        got = adder.add_words(words, 8, result_bits=8).value
        assert got == sum(words) % 256


class TestCycleModel:
    def test_paper_26_cycles_for_8bit_5op(self):
        adder, _ = make_adder()
        r = adder.add_words(
            [1, 2, 3, 4, 5], 8, result_bits=8, costed_staging=True
        )
        assert r.cycles == 26
        assert r.staging_cycles == 10

    def test_paper_19_cycles_for_8bit_2op_trd3(self):
        adder, _ = make_adder(trd=3)
        r = adder.add_words([7, 9], 8, result_bits=8, costed_staging=True)
        assert r.cycles == 19
        assert r.staging_cycles == 3

    def test_two_cycles_per_bit(self):
        adder, _ = make_adder()
        r = adder.add_words([1, 2], 4, result_bits=4)
        assert r.cycles == 8


class TestBlocks:
    def test_packed_blocks_share_cycles(self):
        adder, dbc = make_adder(tracks=64)
        adder.stage_words([10, 20], 8, start_track=0, zero_extend_to=8)
        adder.stage_words([30, 40], 8, start_track=8, zero_extend_to=8)
        r = adder.run(2, result_bits=8, blocks=2, block_stride=8)
        assert r.values == [30, 70]
        assert r.cycles == 16  # same as a single 8-bit block

    def test_carry_masked_at_block_boundary(self):
        adder, _ = make_adder(tracks=64)
        adder.stage_words([255, 255], 8, start_track=0, zero_extend_to=8)
        adder.stage_words([1, 1], 8, start_track=8, zero_extend_to=8)
        r = adder.run(2, result_bits=8, blocks=2, block_stride=8)
        # Block 0 overflows mod 256; the carry must not leak into block 1.
        assert r.values == [(255 + 255) % 256, 2]

    def test_blocks_beyond_tracks_rejected(self):
        adder, _ = make_adder(tracks=16)
        with pytest.raises(ValueError):
            adder.run(2, result_bits=8, blocks=3, block_stride=8)


class TestStagingValidation:
    def test_operand_must_fit(self):
        adder, _ = make_adder()
        with pytest.raises(ValueError):
            adder.stage_words([256], 8)

    def test_negative_rejected(self):
        adder, _ = make_adder()
        with pytest.raises(ValueError):
            adder.stage_words([-1], 8)

    def test_stage_rows_width_checked(self):
        adder, _ = make_adder(tracks=8)
        with pytest.raises(ValueError):
            adder.stage_rows([[1, 0]])

    def test_requires_pim_dbc(self):
        plain = DomainBlockCluster(tracks=4, domains=32, pim_enabled=False)
        with pytest.raises(ValueError):
            MultiOperandAdder(plain)
